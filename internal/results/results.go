// Package results is the dataset layer: the campaign's measurement samples
// as an append-only JSONL store with streaming readers, plus an in-memory
// source for tests and benchmarks. The paper's dataset is 3.2M datapoints
// over nine months (§4.1); everything here streams so the analysis never
// needs the full dataset in memory.
package results

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/colf"
)

// Sample is one ping measurement: probe -> region at a point in time.
type Sample struct {
	ProbeID int       `json:"probe"`
	Region  string    `json:"region"` // "provider/id" address
	Time    time.Time `json:"t"`
	RTTms   float64   `json:"rtt_ms"`         // meaningful only when !Lost
	Lost    bool      `json:"lost,omitempty"` // request unanswered
}

// Validate rejects structurally broken samples.
func (s Sample) Validate() error {
	if s.ProbeID <= 0 {
		return fmt.Errorf("results: bad probe id %d", s.ProbeID)
	}
	if s.Region == "" {
		return errors.New("results: empty region")
	}
	if s.Time.IsZero() {
		return errors.New("results: zero timestamp")
	}
	if !s.Lost && s.RTTms <= 0 {
		return fmt.Errorf("results: non-positive RTT %v on delivered sample", s.RTTms)
	}
	return nil
}

// Source is anything the analysis pipeline can stream samples from.
type Source interface {
	// ForEach calls fn for every sample in storage order. It stops at the
	// first error and returns it.
	ForEach(fn func(Sample) error) error
}

// Memory is an in-memory Source.
type Memory struct{ samples []Sample }

// Add validates and appends one sample.
func (m *Memory) Add(s Sample) error {
	if err := s.Validate(); err != nil {
		return err
	}
	m.samples = append(m.samples, s)
	return nil
}

// Len returns the number of stored samples.
func (m *Memory) Len() int { return len(m.samples) }

// ForEach implements Source.
func (m *Memory) ForEach(fn func(Sample) error) error {
	for _, s := range m.samples {
		if err := fn(s); err != nil {
			return err
		}
	}
	return nil
}

// Writer streams samples to JSONL.
type Writer struct {
	bw      *bufio.Writer
	enc     *json.Encoder
	n       uint64
	bytes   uint64
	metrics *Metrics
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	wr := &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
	wr.enc = json.NewEncoder(countingWriter{w: wr})
	return wr
}

// Write validates and appends one sample.
func (w *Writer) Write(s Sample) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := w.enc.Encode(s); err != nil {
		return err
	}
	w.n++
	if w.metrics != nil {
		w.metrics.Samples.Inc()
	}
	return nil
}

// Count returns the number of samples written.
func (w *Writer) Count() uint64 { return w.n }

// BytesWritten returns the encoded bytes accepted so far (buffered bytes
// included). After a successful Flush it equals the bytes pushed to the
// underlying writer, which is what checkpoint offsets are made of.
func (w *Writer) BytesWritten() uint64 { return w.bytes }

// Flush drains the buffer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// MaxLineBytes is the longest JSONL line the Reader accepts. The default
// bufio.Scanner token limit is 64 KiB, which real-world JSONL (embedded
// traceroutes, annotation blobs) can exceed; lines past this limit
// surface bufio.ErrTooLong with the offending line number instead of a
// bare scanner error.
const MaxLineBytes = 16 << 20

// Reader streams samples from JSONL.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r. Lines up to MaxLineBytes are supported.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	return &Reader{sc: sc}
}

// Next returns the next sample, or io.EOF at the end of the stream.
func (r *Reader) Next() (Sample, error) {
	for r.sc.Scan() {
		r.line++
		raw := r.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var s Sample
		if err := json.Unmarshal(raw, &s); err != nil {
			return Sample{}, fmt.Errorf("results: line %d: %w", r.line, err)
		}
		if err := s.Validate(); err != nil {
			return Sample{}, fmt.Errorf("results: line %d: %w", r.line, err)
		}
		return s, nil
	}
	if err := r.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stops before consuming the oversized line, so
			// the failing line is the one after the last delivered.
			return Sample{}, fmt.Errorf("results: line %d exceeds %d bytes: %w", r.line+1, MaxLineBytes, err)
		}
		return Sample{}, err
	}
	return Sample{}, io.EOF
}

// ForEach implements Source semantics over the remaining stream.
func (r *Reader) ForEach(fn func(Sample) error) error {
	for {
		s, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(s); err != nil {
			return err
		}
	}
}

// Meta describes a stored campaign.
type Meta struct {
	Seed          uint64    `json:"seed"`
	Start         time.Time `json:"start"`
	End           time.Time `json:"end"`
	IntervalHours float64   `json:"interval_hours"`
	Probes        int       `json:"probes"`
	Regions       int       `json:"regions"`
}

// Validate checks campaign metadata.
func (m Meta) Validate() error {
	if m.Start.IsZero() || m.End.IsZero() || !m.End.After(m.Start) {
		return fmt.Errorf("results: invalid campaign window [%v, %v]", m.Start, m.End)
	}
	if m.IntervalHours <= 0 {
		return fmt.Errorf("results: invalid interval %v", m.IntervalHours)
	}
	if m.Probes <= 0 || m.Regions <= 0 {
		return fmt.Errorf("results: invalid census probes=%d regions=%d", m.Probes, m.Regions)
	}
	return nil
}

const (
	metaFile     = "meta.json"
	samplesFile  = "samples.jsonl"
	binaryFile   = "samples.bin"
	snapshotFile = "samples.snap"
	tixFile      = "samples.tix"
)

// Store is an on-disk campaign dataset: a directory holding meta.json
// plus the samples file — samples.bin (binary columnar, the default)
// or samples.jsonl (line JSON). Open detects the format from which
// file exists.
type Store struct {
	dir    string
	meta   Meta
	format Format
}

// Create initializes a dataset directory in the given storage format
// and returns the store plus a sink for its samples. Callers must
// Close the sink.
func Create(dir string, meta Meta, format Format) (*Store, *Sink, error) {
	if err := meta.Validate(); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), mb, 0o644); err != nil {
		return nil, nil, err
	}
	// A dataset holds exactly one samples file; drop any leftover of the
	// other format so Open's sniffing cannot pick up stale data.
	other := FormatJSONL
	if format == FormatJSONL {
		other = FormatBinary
	}
	if err := os.Remove(filepath.Join(dir, other.file())); err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	// Likewise any analysis snapshot or temporal aggregate index: they
	// summarized the old samples file. (Stale ones would be rejected by
	// their binding headers anyway; removing them keeps the directory
	// honest.)
	for _, stale := range []string{snapshotFile, tixFile} {
		if err := os.Remove(filepath.Join(dir, stale)); err != nil && !os.IsNotExist(err) {
			return nil, nil, err
		}
	}
	f, err := os.Create(filepath.Join(dir, format.file()))
	if err != nil {
		return nil, nil, err
	}
	return &Store{dir: dir, meta: meta, format: format}, newSink(f, format, 0, nil), nil
}

// Open loads an existing dataset directory, detecting the storage
// format: a samples.bin file marks a binary store, otherwise the store
// reads samples.jsonl.
func Open(dir string) (*Store, error) {
	mb, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, err
	}
	var meta Meta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, fmt.Errorf("results: corrupt meta: %w", err)
	}
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	format := FormatJSONL
	if _, err := os.Stat(filepath.Join(dir, binaryFile)); err == nil {
		format = FormatBinary
	}
	return &Store{dir: dir, meta: meta, format: format}, nil
}

// Meta returns the campaign metadata.
func (s *Store) Meta() Meta { return s.meta }

// Format returns the store's storage format.
func (s *Store) Format() Format { return s.format }

// Resume reopens the samples file for appending at the given byte
// offset, truncating whatever follows it (the partial round after the
// last checkpoint). For binary stores the offset must be a block
// boundary — which every Sink.Commit offset is — and the blocks before
// it are re-indexed so Close can write a complete file index.
func (s *Store) Resume(offset int64) (*Sink, error) {
	f, err := os.OpenFile(s.SamplesPath(), os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if offset < 0 || offset > st.Size() {
		f.Close()
		return nil, fmt.Errorf("results: resume offset %d outside file of %d bytes", offset, st.Size())
	}
	var existing []colf.BlockInfo
	if s.format == FormatBinary && offset > 0 {
		if existing, err = colf.BlocksTo(f, offset); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return newSink(f, s.format, offset, existing), nil
}

// SamplesPath returns the path of the underlying samples file, for
// consumers (like the parallel scanner) that read the dataset by byte
// range rather than through ForEach. The scanner sniffs the encoding
// from the file's leading bytes.
func (s *Store) SamplesPath() string { return filepath.Join(s.dir, s.format.file()) }

// SnapshotPath returns where the dataset's analysis snapshot lives (see
// internal/snap). The file is optional — it may not exist.
func (s *Store) SnapshotPath() string { return filepath.Join(s.dir, snapshotFile) }

// TixPath returns where the dataset's temporal aggregate index lives
// (see internal/tix). The file is optional — it may not exist.
func (s *Store) TixPath() string { return filepath.Join(s.dir, tixFile) }

// ForEach streams every stored sample in storage order.
func (s *Store) ForEach(fn func(Sample) error) error {
	if s.format == FormatBinary {
		r, closer, err := colf.Open(s.SamplesPath())
		if err != nil {
			return err
		}
		defer closer.Close()
		return r.ForEachRow(func(row colf.Row) error {
			smp := fromRow(row)
			if err := smp.Validate(); err != nil {
				return err
			}
			return fn(smp)
		})
	}
	f, err := os.Open(s.SamplesPath())
	if err != nil {
		return err
	}
	defer f.Close()
	return NewReader(f).ForEach(fn)
}
