package results

import (
	"fmt"

	"repro/internal/colf"
)

// A cell is one (shard, round) batch of samples in transit between a
// cluster worker agent and the coordinator: the samples encoded as a
// standalone colf block stream (see colf.EncodeRows). Cells round-trip
// samples exactly — probe, region, UTC nanosecond timestamp, raw RTT
// bits, loss flag — which is what lets the coordinator's merged dataset
// stay byte-identical to a single-process run.

// EncodeCell validates and encodes samples as a cell payload.
func EncodeCell(samples []Sample) ([]byte, error) {
	rows := make([]colf.Row, len(samples))
	for i, s := range samples {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("results: cell sample %d: %w", i, err)
		}
		r, err := toRow(s)
		if err != nil {
			return nil, fmt.Errorf("results: cell sample %d: %w", i, err)
		}
		rows[i] = r
	}
	return colf.EncodeRows(rows)
}

// DecodeCell decodes a cell payload back into validated samples,
// verifying every block CRC along the way.
func DecodeCell(b []byte) ([]Sample, error) {
	rows, err := colf.DecodeRows(b)
	if err != nil {
		return nil, err
	}
	samples := make([]Sample, len(rows))
	for i, r := range rows {
		s := fromRow(r)
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("results: cell sample %d: %w", i, err)
		}
		samples[i] = s
	}
	return samples, nil
}
