package results

import (
	"fmt"
	"testing"
	"time"
)

// cellSamples fabricates n valid samples with sub-millisecond RTTs and
// awkward timestamps, the fields most likely to lose precision.
func cellSamples(n int) []Sample {
	base := time.Date(2020, 3, 1, 0, 0, 0, 987654321, time.UTC)
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{
			ProbeID: i + 1,
			Region:  fmt.Sprintf("gcp/zone-%d", i%5),
			Time:    base.Add(time.Duration(i) * 3 * time.Hour),
			RTTms:   12.25 + float64(i)*0.125,
		}
		if i%13 == 0 {
			out[i].Lost = true
			out[i].RTTms = 0
		}
	}
	return out
}

// TestCellRoundTrip checks cells round-trip samples exactly — probe,
// region, UTC nanosecond timestamp, raw RTT bits, loss flag.
func TestCellRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 57, 1000} {
		payload, err := EncodeCell(cellSamples(n))
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		got, err := DecodeCell(payload)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		want := cellSamples(n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: decoded %d samples", n, len(got))
		}
		for i := range got {
			a, b := got[i], want[i]
			if a.ProbeID != b.ProbeID || a.Region != b.Region || !a.Time.Equal(b.Time) ||
				a.RTTms != b.RTTms || a.Lost != b.Lost {
				t.Fatalf("n=%d: sample %d diverges: %+v vs %+v", n, i, a, b)
			}
		}
	}
}

// TestEncodeCellRejectsInvalid checks a broken sample cannot enter a
// cell.
func TestEncodeCellRejectsInvalid(t *testing.T) {
	bad := cellSamples(3)
	bad[1].Region = ""
	if _, err := EncodeCell(bad); err == nil {
		t.Fatal("invalid sample encoded without error")
	}
}

// TestDecodeCellRejectsCorruption flips one byte of a valid cell and
// expects the block CRC to catch it.
func TestDecodeCellRejectsCorruption(t *testing.T) {
	payload, err := EncodeCell(cellSamples(200))
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)-3] ^= 0x55
	if _, err := DecodeCell(payload); err == nil {
		t.Fatal("corrupted cell decoded without error")
	}
}
