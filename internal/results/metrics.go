package results

import "repro/internal/obs"

// Metrics are the dataset-writer throughput instruments: samples appended
// and encoded bytes pushed toward the underlying writer.
type Metrics struct {
	Samples *obs.Counter
	Bytes   *obs.Counter
}

// NewMetrics registers the writer instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Samples: reg.Counter("results_samples_written_total", "Samples appended to the dataset."),
		Bytes:   reg.Counter("results_bytes_written_total", "Encoded sample bytes written to the dataset."),
	}
}

// Instrument attaches throughput instruments to the writer. Call it
// before the first Write; samples already written are not back-counted.
func (w *Writer) Instrument(m *Metrics) {
	if w != nil {
		w.metrics = m
	}
}

// countingWriter sits between the JSON encoder and the buffer, crediting
// encoded bytes to the writer's byte offset and metrics.
type countingWriter struct{ w *Writer }

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.bw.Write(p)
	c.w.bytes += uint64(n)
	if c.w.metrics != nil {
		c.w.metrics.Bytes.Add(uint64(n))
	}
	return n, err
}
