package results

import (
	"fmt"
	"os"
	"time"

	"repro/internal/colf"
)

// Format identifies the on-disk encoding of a store's samples file.
type Format int

const (
	// FormatJSONL is the line-oriented JSON encoding (samples.jsonl).
	FormatJSONL Format = iota
	// FormatBinary is the colf columnar block encoding (samples.bin).
	FormatBinary
)

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatJSONL:
		return "jsonl"
	case FormatBinary:
		return "binary"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// file returns the samples file name the format stores under.
func (f Format) file() string {
	if f == FormatBinary {
		return binaryFile
	}
	return samplesFile
}

// ParseFormat maps a flag spelling to a Format. The empty string
// selects the default, binary.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "binary", "bin", "colf":
		return FormatBinary, nil
	case "jsonl", "json":
		return FormatJSONL, nil
	}
	return 0, fmt.Errorf("results: unknown dataset format %q (want binary or jsonl)", s)
}

// The binary format stores timestamps as Unix nanoseconds, which only
// represent times in roughly [1678, 2262); anything outside is refused
// at write time rather than silently wrapped.
var (
	minBinaryTime = time.Date(1678, 1, 1, 0, 0, 0, 0, time.UTC)
	maxBinaryTime = time.Date(2261, 12, 31, 23, 59, 59, 0, time.UTC)
)

// toRow converts a validated sample to colf's row form.
func toRow(s Sample) (colf.Row, error) {
	if s.Time.Before(minBinaryTime) || s.Time.After(maxBinaryTime) {
		return colf.Row{}, fmt.Errorf("results: timestamp %v outside the binary format's nanosecond range", s.Time)
	}
	return colf.Row{
		Probe:    s.ProbeID,
		TimeNano: s.Time.UnixNano(),
		Region:   s.Region,
		RTT:      s.RTTms,
		Lost:     s.Lost,
	}, nil
}

// fromRow converts a decoded row back to a sample. Times come back in
// UTC, which is also what the JSONL encoding round-trips through
// RFC 3339.
func fromRow(r colf.Row) Sample {
	return Sample{
		ProbeID: r.Probe,
		Region:  r.Region,
		Time:    time.Unix(0, r.TimeNano).UTC(),
		RTTms:   r.RTT,
		Lost:    r.Lost,
	}
}

// Sink appends samples to a store's samples file in its storage
// format. It is the write half of a Store: engines stream samples in,
// Commit durably flushes at checkpoint time, and Close finalizes the
// file (for binary stores, appending the block index).
type Sink struct {
	f       *os.File
	format  Format
	base    int64 // samples-file offset where this sink started
	jw      *Writer
	cw      *colf.Writer
	metrics *Metrics
	counted uint64 // binary bytes already credited to metrics
	closed  bool
}

// newSink wraps an open samples file positioned at base.
func newSink(f *os.File, format Format, base int64, existing []colf.BlockInfo) *Sink {
	s := &Sink{f: f, format: format, base: base}
	if format == FormatBinary {
		s.cw = colf.NewWriterAt(f, base, existing)
	} else {
		s.jw = NewWriter(f)
	}
	return s
}

// Format returns the sink's storage format.
func (s *Sink) Format() Format { return s.format }

// Instrument attaches throughput instruments. Call it before the first
// Write; samples already written are not back-counted.
func (s *Sink) Instrument(m *Metrics) {
	if s == nil {
		return
	}
	s.metrics = m
	if s.jw != nil {
		s.jw.Instrument(m)
	}
}

// Write validates and appends one sample.
func (s *Sink) Write(smp Sample) error {
	if s.jw != nil {
		return s.jw.Write(smp)
	}
	if err := smp.Validate(); err != nil {
		return err
	}
	r, err := toRow(smp)
	if err != nil {
		return err
	}
	if err := s.cw.Write(r); err != nil {
		return err
	}
	if s.metrics != nil {
		s.metrics.Samples.Inc()
	}
	return nil
}

// Count returns the number of samples this sink accepted.
func (s *Sink) Count() uint64 {
	if s.jw != nil {
		return s.jw.Count()
	}
	return s.cw.Count()
}

// BytesWritten returns the absolute samples-file offset this sink's
// writes reach. After a successful Flush it is the on-disk file size —
// and for binary stores a block boundary, which is what makes it a
// valid checkpoint offset.
func (s *Sink) BytesWritten() int64 {
	if s.jw != nil {
		return s.base + int64(s.jw.BytesWritten())
	}
	return s.base + int64(s.cw.BytesWritten())
}

// Flush pushes buffered samples to the file. For binary stores this
// seals the open partial block, so the flushed prefix is a valid block
// sequence.
func (s *Sink) Flush() error {
	if s.jw != nil {
		return s.jw.Flush()
	}
	if err := s.cw.Flush(); err != nil {
		return err
	}
	s.credit()
	return nil
}

// credit adds newly flushed binary bytes to the byte counter. The
// JSONL path counts at encode time instead (pre-buffer); binary blocks
// only materialize bytes when they seal.
func (s *Sink) credit() {
	if s.metrics == nil {
		return
	}
	if b := s.cw.BytesWritten(); b > s.counted {
		s.metrics.Bytes.Add(b - s.counted)
		s.counted = b
	}
}

// Commit makes everything written so far durable (flush + fsync) and
// returns the resulting samples-file offset — always a valid resume
// point. Engines call it before persisting a checkpoint, so a
// checkpoint never references bytes the file does not durably hold.
func (s *Sink) Commit() (int64, error) {
	if err := s.Flush(); err != nil {
		return 0, err
	}
	if err := s.f.Sync(); err != nil {
		return 0, err
	}
	return s.BytesWritten(), nil
}

// Close flushes, finalizes the file (binary: appends the block index),
// syncs and closes it. Close is idempotent.
func (s *Sink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := func() error {
		if s.jw != nil {
			if err := s.jw.Flush(); err != nil {
				return err
			}
			return s.f.Sync()
		}
		if err := s.cw.Finish(); err != nil {
			return err
		}
		s.credit()
		return s.f.Sync()
	}()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
