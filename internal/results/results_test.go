package results

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

func sample(i int) Sample {
	return Sample{ProbeID: i, Region: "Amazon/eu-north-1", Time: t0.Add(time.Duration(i) * time.Hour), RTTms: float64(10 + i)}
}

func TestSampleValidate(t *testing.T) {
	good := sample(1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid sample rejected: %v", err)
	}
	cases := []Sample{
		{ProbeID: 0, Region: "x", Time: t0, RTTms: 1},
		{ProbeID: 1, Region: "", Time: t0, RTTms: 1},
		{ProbeID: 1, Region: "x", RTTms: 1},
		{ProbeID: 1, Region: "x", Time: t0, RTTms: 0},
		{ProbeID: 1, Region: "x", Time: t0, RTTms: -5},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid sample accepted: %+v", i, s)
		}
	}
	lost := Sample{ProbeID: 1, Region: "x", Time: t0, Lost: true}
	if err := lost.Validate(); err != nil {
		t.Errorf("lost sample rejected: %v", err)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Sample{sample(1), sample(2), {ProbeID: 3, Region: "r", Time: t0, Lost: true}}
	for _, s := range want {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var got []Sample
	if err := r.ForEach(func(s Sample) error { got = append(got, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples", len(got))
	}
	for i := range want {
		if got[i].ProbeID != want[i].ProbeID || got[i].RTTms != want[i].RTTms ||
			got[i].Lost != want[i].Lost || !got[i].Time.Equal(want[i].Time) {
			t.Errorf("sample %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Sample{}); err == nil {
		t.Error("invalid sample written")
	}
	if w.Count() != 0 {
		t.Error("count incremented on failure")
	}
}

func TestReaderErrors(t *testing.T) {
	// Corrupt JSON.
	r := NewReader(strings.NewReader("{not json}\n"))
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("corrupt line: %v", err)
	}
	// Valid JSON, invalid sample.
	r = NewReader(strings.NewReader(`{"probe":0,"region":"x","t":"2019-09-01T00:00:00Z","rtt_ms":1}` + "\n"))
	if _, err := r.Next(); err == nil {
		t.Error("invalid sample accepted")
	}
	// Blank lines are skipped.
	r = NewReader(strings.NewReader("\n\n" + `{"probe":1,"region":"x","t":"2019-09-01T00:00:00Z","rtt_ms":1}` + "\n\n"))
	if s, err := r.Next(); err != nil || s.ProbeID != 1 {
		t.Errorf("blank-line handling: %+v, %v", s, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("EOF expected, got %v", err)
	}
}

func TestForEachStopsOnCallbackError(t *testing.T) {
	var m Memory
	for i := 1; i <= 5; i++ {
		if err := m.Add(sample(i)); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := errors.New("stop")
	seen := 0
	err := m.ForEach(func(Sample) error {
		seen++
		if seen == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || seen != 2 {
		t.Errorf("err=%v seen=%d", err, seen)
	}
}

func TestMemory(t *testing.T) {
	var m Memory
	if err := m.Add(Sample{}); err == nil {
		t.Error("invalid sample accepted")
	}
	if err := m.Add(sample(1)); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestMetaValidate(t *testing.T) {
	good := Meta{Seed: 1, Start: t0, End: t0.Add(time.Hour), IntervalHours: 3, Probes: 10, Regions: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid meta rejected: %v", err)
	}
	bad := []Meta{
		{},
		{Start: t0, End: t0, IntervalHours: 3, Probes: 1, Regions: 1},
		{Start: t0, End: t0.Add(time.Hour), IntervalHours: 0, Probes: 1, Regions: 1},
		{Start: t0, End: t0.Add(time.Hour), IntervalHours: 3, Probes: 0, Regions: 1},
		{Start: t0, End: t0.Add(time.Hour), IntervalHours: 3, Probes: 1, Regions: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid meta accepted", i)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for _, format := range []Format{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "campaign")
			meta := Meta{Seed: 42, Start: t0, End: t0.Add(24 * time.Hour), IntervalHours: 3, Probes: 2, Regions: 1}
			_, sink, err := Create(dir, meta, format)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 10; i++ {
				if err := sink.Write(sample(i)); err != nil {
					t.Fatal(err)
				}
			}
			if sink.Count() != 10 {
				t.Errorf("sink Count = %d", sink.Count())
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}

			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if st.Format() != format {
				t.Errorf("detected format %v, want %v", st.Format(), format)
			}
			if got := st.Meta(); got.Seed != 42 || !got.Start.Equal(t0) {
				t.Errorf("meta = %+v", got)
			}
			var got []Sample
			if err := st.ForEach(func(s Sample) error { got = append(got, s); return nil }); err != nil {
				t.Fatal(err)
			}
			if len(got) != 10 {
				t.Fatalf("streamed %d samples, want 10", len(got))
			}
			for i, s := range got {
				want := sample(i + 1)
				if s.ProbeID != want.ProbeID || s.Region != want.Region || !s.Time.Equal(want.Time) ||
					s.RTTms != want.RTTms || s.Lost != want.Lost {
					t.Errorf("sample %d: %+v vs %+v", i, s, want)
				}
			}
		})
	}
}

func TestStoreErrors(t *testing.T) {
	if _, _, err := Create(t.TempDir(), Meta{}, FormatJSONL); err == nil {
		t.Error("invalid meta accepted")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir opened")
	}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{"": FormatBinary, "binary": FormatBinary, "bin": FormatBinary,
		"jsonl": FormatJSONL, "json": FormatJSONL}
	for in, want := range cases {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("parquet"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestBinarySinkRejectsOutOfRangeTime(t *testing.T) {
	_, sink, err := Create(t.TempDir(), Meta{Seed: 1, Start: t0, End: t0.Add(time.Hour),
		IntervalHours: 1, Probes: 1, Regions: 1}, FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	s := sample(1)
	s.Time = time.Date(1400, 1, 1, 0, 0, 0, 0, time.UTC) // outside UnixNano's range
	if err := sink.Write(s); err == nil {
		t.Error("pre-1678 timestamp accepted by binary sink")
	}
	if sink.Count() != 0 {
		t.Errorf("rejected sample counted: %d", sink.Count())
	}
}

func TestReaderLargeLine(t *testing.T) {
	// A line far beyond bufio.Scanner's 64 KiB default must stream fine.
	s := sample(1)
	s.Region = "Amazon/" + strings.Repeat("x", 512*1024)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatalf("512 KiB line: %v", err)
	}
	if got.Region != s.Region {
		t.Error("large region mangled")
	}
}

func TestReaderOversizedLineSurfacesErrTooLong(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 1; i <= 2; i++ {
		if err := w.Write(sample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"probe":3,"region":"Amazon/` + strings.Repeat("y", MaxLineBytes) + `"}` + "\n")

	r := NewReader(&buf)
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	_, err := r.Next()
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
}

func TestWriterBytesWritten(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 1; i <= 5; i++ {
		if err := w.Write(sample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := w.BytesWritten(); got != uint64(buf.Len()) {
		t.Errorf("BytesWritten = %d, flushed %d", got, buf.Len())
	}
}

func TestStoreResumeTruncates(t *testing.T) {
	for _, format := range []Format{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			dir := t.TempDir()
			meta := Meta{Seed: 1, Start: t0, End: t0.Add(time.Hour), IntervalHours: 1, Probes: 5, Regions: 3}
			_, sink, err := Create(dir, meta, format)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 4; i++ {
				if err := sink.Write(sample(i)); err != nil {
					t.Fatal(err)
				}
			}
			offset, err := sink.Commit() // durable watermark after 4 samples
			if err != nil {
				t.Fatal(err)
			}
			// Simulate a partial post-checkpoint round.
			for i := 5; i <= 7; i++ {
				if err := sink.Write(sample(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}

			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			sink2, err := st.Resume(offset)
			if err != nil {
				t.Fatal(err)
			}
			for i := 5; i <= 6; i++ {
				if err := sink2.Write(sample(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := sink2.Close(); err != nil {
				t.Fatal(err)
			}

			var ids []int
			if err := st.ForEach(func(s Sample) error { ids = append(ids, s.ProbeID); return nil }); err != nil {
				t.Fatal(err)
			}
			want := []int{1, 2, 3, 4, 5, 6}
			if len(ids) != len(want) {
				t.Fatalf("resumed store has %d samples, want %d", len(ids), len(want))
			}
			for i := range want {
				if ids[i] != want[i] {
					t.Fatalf("sample %d = probe %d, want %d", i, ids[i], want[i])
				}
			}

			if _, err := st.Resume(1 << 40); err == nil {
				t.Error("offset past EOF accepted")
			}
			if _, err := st.Resume(-1); err == nil {
				t.Error("negative offset accepted")
			}
		})
	}
}

func TestBinaryResumeRejectsMidBlockOffset(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Seed: 1, Start: t0, End: t0.Add(time.Hour), IntervalHours: 1, Probes: 5, Regions: 3}
	_, sink, err := Create(dir, meta, FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := sink.Write(sample(i)); err != nil {
			t.Fatal(err)
		}
	}
	offset, err := sink.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Resume(offset - 3); err == nil {
		t.Error("mid-block resume offset accepted")
	}
	// The failed resume must not have truncated anything: the commit
	// offset still works and the data is intact.
	sink2, err := st.Resume(offset)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := st.ForEach(func(Sample) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("store holds %d samples, want 20", n)
	}
}
