package engine

import (
	"strconv"

	"repro/internal/obs"
)

// Metrics are the engine's execution instruments. A nil *Metrics (or any
// nil field) disables that instrument; the engine never guards.
type Metrics struct {
	// ShardRounds tracks each shard's generated-round watermark (which may
	// run ahead of the merged watermark by up to the queue depth).
	ShardRounds *obs.GaugeVec // shard
	// RoundsMerged is the merger's completed-round watermark.
	RoundsMerged *obs.Gauge
	// QueueDepth is the total number of batches queued across shards,
	// sampled after each merged round.
	QueueDepth *obs.Gauge
	// QueueDepthPeak is the high-water mark of QueueDepth over the run.
	QueueDepthPeak *obs.Gauge
	// MergeStalls counts merges that had to wait for a shard to deliver.
	MergeStalls *obs.Counter
	// SinkRetries counts transient sink errors that were retried.
	SinkRetries *obs.Counter
	// CheckpointWrites counts checkpoints persisted.
	CheckpointWrites *obs.Counter
}

// NewMetrics registers the engine instrument set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		ShardRounds: reg.GaugeVec("engine_shard_rounds_generated",
			"Rounds generated per shard (may run ahead of the merge).", "shard"),
		RoundsMerged: reg.Gauge("engine_rounds_merged",
			"Rounds fully merged into the sink."),
		QueueDepth: reg.Gauge("engine_queue_depth",
			"Batches buffered between shards and the merger."),
		QueueDepthPeak: reg.Gauge("engine_queue_depth_peak",
			"High-water mark of the shard-to-merger queue depth."),
		MergeStalls: reg.Counter("engine_merge_stalls_total",
			"Merge steps that blocked waiting for a shard's batch."),
		SinkRetries: reg.Counter("engine_sink_retries_total",
			"Transient sink errors retried."),
		CheckpointWrites: reg.Counter("engine_checkpoint_writes_total",
			"Checkpoints persisted."),
	}
}

// shardGauge resolves the progress gauge for one shard (nil-safe).
func (m *Metrics) shardGauge(shard int) *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.ShardRounds.With(strconv.Itoa(shard))
}

func (m *Metrics) mergeStall() {
	if m != nil {
		m.MergeStalls.Inc()
	}
}

func (m *Metrics) sinkRetry() {
	if m != nil {
		m.SinkRetries.Inc()
	}
}

func (m *Metrics) checkpointWrite() {
	if m != nil {
		m.CheckpointWrites.Inc()
	}
}
