package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/results"
)

// A lease-scoped run is the engine's distributed form: instead of owning
// every shard of the partition, the engine executes exactly one shard of
// a fixed N-way partition on behalf of a cluster lease, handing each
// completed round's batch (a "cell") to an emit callback that ships it
// to the coordinator. The coordinator merges cells round-major in shard
// order, so the cluster-wide output reproduces the single-process merge
// byte for byte.

// EmitFunc receives one completed (shard, round) cell. It must not
// retain samples after returning.
type EmitFunc func(round int, samples []results.Sample) error

// LeaseConfig describes one lease-scoped shard run.
type LeaseConfig struct {
	// Shard is the global shard index of the lease, passed to Gen.
	Shard int
	// StartRound is the first round to execute (the coordinator's
	// uploaded watermark + 1); Rounds is the campaign's round count.
	StartRound int
	Rounds     int
	// BatchHint preallocates each round's sample buffer.
	BatchHint int
	// Gen synthesizes one (shard, round) cell, exactly as in Config.
	Gen GenFunc
	// Emit ships one completed cell. Errors marked Transient are
	// retried up to MaxRetries times; anything else aborts the lease.
	Emit EmitFunc
	// MaxRetries bounds per-cell retries of transient Emit errors
	// (default DefaultMaxRetries).
	MaxRetries int
	// Log, when set, receives lease progress events.
	Log *obs.Logger
}

// RunLease executes the configured shard window round by round,
// emitting each cell in order. It returns the number of rounds fully
// emitted and the first error encountered; on error the coordinator's
// watermark for the shard is exactly StartRound+completed, which is
// where the next lease of this shard resumes.
func RunLease(ctx context.Context, cfg LeaseConfig) (int, error) {
	if cfg.Gen == nil || cfg.Emit == nil {
		return 0, errors.New("engine: nil Gen or Emit")
	}
	if cfg.Rounds < 0 || cfg.StartRound < 0 || cfg.StartRound > cfg.Rounds {
		return 0, fmt.Errorf("engine: invalid lease window start=%d rounds=%d", cfg.StartRound, cfg.Rounds)
	}
	maxRetries := cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}
	completed := 0
	for round := cfg.StartRound; round < cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		buf := make([]results.Sample, 0, cfg.BatchHint)
		err := cfg.Gen(ctx, cfg.Shard, round, func(s results.Sample) error {
			buf = append(buf, s)
			return nil
		})
		if err != nil {
			return completed, fmt.Errorf("engine: shard %d round %d: %w", cfg.Shard, round, err)
		}
		if err := emitWithRetry(cfg.Emit, round, buf, maxRetries, cfg.Log); err != nil {
			return completed, err
		}
		completed++
	}
	cfg.Log.Info("lease complete",
		"shard", cfg.Shard, "start_round", cfg.StartRound, "rounds", completed)
	return completed, nil
}

// emitWithRetry ships one cell, retrying transient errors up to
// maxRetries extra attempts.
func emitWithRetry(emit EmitFunc, round int, samples []results.Sample, maxRetries int, log *obs.Logger) error {
	var err error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if err = emit(round, samples); err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		log.Warn("cell emit retry", "round", round, "attempt", attempt+1, "error", err)
	}
	return fmt.Errorf("engine: cell emit still failing after %d retries: %w", maxRetries, err)
}
