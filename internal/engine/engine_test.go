package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/results"
)

// testGen emits perShard samples per (shard, round) cell with identities
// encoding the cell, so merge order is fully observable.
func testGen(shards, perShard int) GenFunc {
	return func(ctx context.Context, shard, round int, emit func(results.Sample) error) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := 0; i < perShard; i++ {
			s := results.Sample{
				ProbeID: shard*1_000_000 + round*1_000 + i + 1,
				Region:  fmt.Sprintf("prov/r%d", shard),
				Time:    time.Unix(int64(round), 0).UTC(),
				RTTms:   float64(round + 1),
			}
			if err := emit(s); err != nil {
				return err
			}
		}
		return nil
	}
}

// serialOrder is the canonical expectation: round-major, shard-ascending.
func serialOrder(shards, rounds, perShard int) []results.Sample {
	var out []results.Sample
	gen := testGen(shards, perShard)
	for round := 0; round < rounds; round++ {
		for s := 0; s < shards; s++ {
			gen(context.Background(), s, round, func(smp results.Sample) error {
				out = append(out, smp)
				return nil
			})
		}
	}
	return out
}

func TestRunMergesInCanonicalOrder(t *testing.T) {
	const rounds, perShard = 9, 7
	for _, workers := range []int{1, 2, 3, 5, 8} {
		var got []results.Sample
		n, err := Run(context.Background(), Config{
			Workers: workers,
			Rounds:  rounds,
			Gen:     testGen(workers, perShard),
			Sink: func(s results.Sample) error {
				got = append(got, s)
				return nil
			},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := serialOrder(workers, rounds, perShard)
		if n != uint64(len(want)) {
			t.Fatalf("workers=%d: emitted %d, want %d", workers, n, len(want))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: merged order diverges from canonical order", workers)
		}
	}
}

func TestRunGenErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	gen := func(ctx context.Context, shard, round int, emit func(results.Sample) error) error {
		if shard == 1 && round == 2 {
			return boom
		}
		return testGen(3, 2)(ctx, shard, round, emit)
	}
	_, err := Run(context.Background(), Config{
		Workers: 3,
		Rounds:  5,
		Gen:     gen,
		Sink:    func(results.Sample) error { return nil },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestRunSinkErrorStops(t *testing.T) {
	sentinel := errors.New("disk full")
	var wrote int
	n, err := Run(context.Background(), Config{
		Workers: 2,
		Rounds:  4,
		Gen:     testGen(2, 3),
		Sink: func(results.Sample) error {
			if wrote == 7 {
				return sentinel
			}
			wrote++
			return nil
		},
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if n != 7 {
		t.Fatalf("emitted = %d, want 7", n)
	}
}

func TestRunRetriesTransientSinkErrors(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	fails := 2
	var got []results.Sample
	n, err := Run(context.Background(), Config{
		Workers: 2,
		Rounds:  3,
		Gen:     testGen(2, 2),
		Metrics: m,
		Sink: func(s results.Sample) error {
			if fails > 0 {
				fails--
				return Transient(errors.New("flaky"))
			}
			got = append(got, s)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := serialOrder(2, 3, 2)
	if n != uint64(len(want)) || !reflect.DeepEqual(got, want) {
		t.Fatalf("retried run emitted %d samples, want %d in canonical order", n, len(want))
	}
	if v := m.SinkRetries.Value(); v != 2 {
		t.Fatalf("sink retries counter = %d, want 2", v)
	}
}

func TestRunTransientRetryLimit(t *testing.T) {
	calls := 0
	_, err := Run(context.Background(), Config{
		Workers:    1,
		Rounds:     1,
		MaxRetries: 2,
		Gen:        testGen(1, 1),
		Sink: func(results.Sample) error {
			calls++
			return Transient(errors.New("always failing"))
		},
	})
	if err == nil {
		t.Fatal("permanently transient sink accepted")
	}
	if calls != 3 { // initial attempt + 2 retries
		t.Fatalf("sink called %d times, want 3", calls)
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n int
	_, err := Run(ctx, Config{
		Workers: 2,
		Rounds:  1_000,
		Gen:     testGen(2, 4),
		Sink: func(results.Sample) error {
			n++
			if n == 10 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunChecksAndResumesFromCheckpoint(t *testing.T) {
	const workers, rounds, perShard = 3, 12, 5
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "checkpoint.json")
	reg := obs.NewRegistry()
	m := NewMetrics(reg)

	// The "sink" is an in-memory log whose durable offset is its length at
	// the last commit; the tail past that offset simulates unflushed or
	// partial post-checkpoint output that resume must discard.
	var log []results.Sample
	commit := func() (int64, error) { return int64(len(log)), nil }

	// First run: fail permanently partway through round 9, after the
	// round-7 checkpoint (CheckpointEvery=4 -> checkpoints at rounds 3, 7).
	sentinel := errors.New("power cut")
	var emitted int
	_, err := Run(context.Background(), Config{
		Workers:         workers,
		Rounds:          rounds,
		CheckpointEvery: 4,
		CheckpointPath:  ckPath,
		Commit:          commit,
		Fingerprint:     "fp-1",
		Metrics:         m,
		Gen:             testGen(workers, perShard),
		Sink: func(s results.Sample) error {
			if emitted == 9*workers*perShard+4 { // mid round 9
				return sentinel
			}
			log = append(log, s)
			emitted++
			return nil
		},
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("interrupted run err = %v, want %v", err, sentinel)
	}
	if v := m.CheckpointWrites.Value(); v != 2 {
		t.Fatalf("checkpoint writes = %d, want 2", v)
	}

	cp, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Round != 7 || cp.Fingerprint != "fp-1" || cp.Workers != workers {
		t.Fatalf("checkpoint = %+v, want round 7 fp-1", cp)
	}
	if cp.Samples != uint64((cp.Round+1)*workers*perShard) {
		t.Fatalf("checkpoint samples = %d, want %d", cp.Samples, (cp.Round+1)*workers*perShard)
	}
	if cp.SinkOffset != int64(cp.Samples) {
		t.Fatalf("checkpoint offset = %d, want %d", cp.SinkOffset, cp.Samples)
	}

	// Resume: truncate the log to the durable offset and continue from the
	// watermark, with a different worker count to prove shard-count
	// independence of the merged stream.
	log = log[:cp.SinkOffset]
	n, err := Run(context.Background(), Config{
		Workers:      5,
		Rounds:       rounds,
		StartRound:   cp.Round + 1,
		StartSamples: cp.Samples,
		Gen:          testGen(5, perShard),
		Sink: func(s results.Sample) error {
			log = append(log, s)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the prefix expectation with the original shard count and the
	// suffix with the resumed one: both describe the same logical stream
	// when per-cell content depends only on (shard, round).
	want := serialOrder(workers, cp.Round+1, perShard)
	want = append(want, serialOrder(5, rounds, perShard)[len(serialOrder(5, cp.Round+1, perShard)):]...)
	if n != uint64(len(want)) {
		t.Fatalf("resumed total = %d, want %d", n, len(want))
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatal("resumed stream diverges from uninterrupted stream")
	}
}

func TestCheckpointSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	cp := Checkpoint{
		Version: 1, Fingerprint: "abc", Workers: 4, Round: 17,
		Samples: 1234, SinkOffset: 99_000,
		Shards: []ShardMark{{0, 17}, {1, 17}, {2, 17}, {3, 17}},
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, cp) {
		t.Fatalf("roundtrip = %+v, want %+v", got, cp)
	}

	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing file err = %v, want ErrNoCheckpoint", err)
	}

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}

	bad := cp
	bad.Version = 9
	if err := bad.Save(path); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTransientMarking(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	base := errors.New("io")
	te := Transient(base)
	if !IsTransient(te) || !errors.Is(te, base) {
		t.Fatal("transient wrapper broken")
	}
	if IsTransient(base) {
		t.Fatal("unmarked error reported transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", te)) {
		t.Fatal("wrapped transient not detected")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Rounds: 1}); err == nil {
		t.Fatal("nil Gen/Sink accepted")
	}
	_, err := Run(context.Background(), Config{
		Rounds: 2, StartRound: 5,
		Gen:  testGen(1, 1),
		Sink: func(results.Sample) error { return nil },
	})
	if err == nil {
		t.Fatal("StartRound past Rounds accepted")
	}
}

// TestOnCheckpointHook pins the checkpoint callback contract: it fires
// once per durable checkpoint, after the checkpoint file exists, with
// the checkpointed round and the committed sink offset.
func TestOnCheckpointHook(t *testing.T) {
	const workers, rounds, perShard = 3, 12, 5
	ckPath := filepath.Join(t.TempDir(), "ck.json")
	var log []results.Sample
	type ck struct {
		round  int
		offset int64
	}
	var hooks []ck
	_, err := Run(context.Background(), Config{
		Workers:         workers,
		Rounds:          rounds,
		CheckpointEvery: 4,
		CheckpointPath:  ckPath,
		Commit:          func() (int64, error) { return int64(len(log)), nil },
		Gen:             testGen(workers, perShard),
		Sink: func(s results.Sample) error {
			log = append(log, s)
			return nil
		},
		OnCheckpoint: func(round int, offset int64) {
			// The checkpoint must already be durable when the hook runs.
			cp, err := LoadCheckpoint(ckPath)
			if err != nil {
				t.Errorf("checkpoint unreadable inside hook: %v", err)
			} else if cp.Round != round || cp.SinkOffset != offset {
				t.Errorf("hook (round=%d offset=%d) disagrees with file (round=%d offset=%d)",
					round, offset, cp.Round, cp.SinkOffset)
			}
			hooks = append(hooks, ck{round, offset})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// CheckpointEvery=4 over 12 rounds checkpoints after rounds 3 and 7;
	// the final round never checkpoints.
	want := []ck{
		{3, int64(4 * workers * perShard)},
		{7, int64(8 * workers * perShard)},
	}
	if !reflect.DeepEqual(hooks, want) {
		t.Fatalf("hooks = %+v, want %+v", hooks, want)
	}
}
