package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/results"
)

// leaseGen fabricates a deterministic cell: shard and round encoded in
// the probe ID so tests can assert exactly what was emitted.
func leaseGen(samplesPerRound int) GenFunc {
	return func(ctx context.Context, shard, round int, emit func(results.Sample) error) error {
		for i := 0; i < samplesPerRound; i++ {
			s := results.Sample{
				ProbeID: shard*1_000_000 + round*1_000 + i + 1,
				Region:  "aws/test",
				Time:    time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(round) * time.Hour),
				RTTms:   1,
			}
			if err := emit(s); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestRunLeaseEmitsWindowInOrder checks a lease runs its window
// sequentially from the start round and reports the completed count.
func TestRunLeaseEmitsWindowInOrder(t *testing.T) {
	var rounds []int
	completed, err := RunLease(context.Background(), LeaseConfig{
		Shard:      3,
		StartRound: 5,
		Rounds:     12,
		Gen:        leaseGen(4),
		Emit: func(round int, samples []results.Sample) error {
			rounds = append(rounds, round)
			if len(samples) != 4 {
				t.Fatalf("round %d: %d samples", round, len(samples))
			}
			if want := 3*1_000_000 + round*1_000 + 1; samples[0].ProbeID != want {
				t.Fatalf("round %d: first probe %d, want %d", round, samples[0].ProbeID, want)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if completed != 7 {
		t.Fatalf("completed = %d, want 7", completed)
	}
	for i, r := range rounds {
		if r != 5+i {
			t.Fatalf("emit order diverges at %d: round %d", i, r)
		}
	}
}

// TestRunLeaseRetriesTransientEmit checks transient emit errors are
// retried in place while anything else aborts with the watermark
// intact.
func TestRunLeaseRetriesTransientEmit(t *testing.T) {
	flaky := 0
	completed, err := RunLease(context.Background(), LeaseConfig{
		Rounds: 3,
		Gen:    leaseGen(1),
		Emit: func(round int, samples []results.Sample) error {
			if round == 1 && flaky < 2 {
				flaky++
				return Transient(errors.New("socket hiccup"))
			}
			return nil
		},
	})
	if err != nil || completed != 3 {
		t.Fatalf("completed=%d err=%v, want 3 rounds clean", completed, err)
	}

	fatal := errors.New("lease revoked")
	completed, err = RunLease(context.Background(), LeaseConfig{
		Rounds: 5,
		Gen:    leaseGen(1),
		Emit: func(round int, samples []results.Sample) error {
			if round == 2 {
				return fatal
			}
			return nil
		},
	})
	if !errors.Is(err, fatal) {
		t.Fatalf("err = %v, want the fatal emit error", err)
	}
	if completed != 2 {
		t.Fatalf("completed = %d, want 2 (the next lease resumes at round 2)", completed)
	}
}

// TestRunLeaseExhaustsTransientRetries checks a persistently transient
// emit eventually fails instead of looping forever.
func TestRunLeaseExhaustsTransientRetries(t *testing.T) {
	attempts := 0
	_, err := RunLease(context.Background(), LeaseConfig{
		Rounds:     1,
		MaxRetries: 2,
		Gen:        leaseGen(1),
		Emit: func(int, []results.Sample) error {
			attempts++
			return Transient(fmt.Errorf("still down"))
		},
	})
	if err == nil {
		t.Fatal("exhausted retries reported no error")
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 1 + 2 retries", attempts)
	}
}

// TestRunLeaseHonorsContext checks cancellation stops the loop between
// rounds.
func TestRunLeaseHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	completed, err := RunLease(ctx, LeaseConfig{
		Rounds: 100,
		Gen:    leaseGen(1),
		Emit: func(round int, _ []results.Sample) error {
			if round == 3 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if completed != 4 {
		t.Fatalf("completed = %d, want 4", completed)
	}
}

// TestRunLeaseValidatesWindow checks nil callbacks and inverted windows
// are refused up front.
func TestRunLeaseValidatesWindow(t *testing.T) {
	if _, err := RunLease(context.Background(), LeaseConfig{Rounds: 1}); err == nil {
		t.Fatal("nil Gen/Emit accepted")
	}
	_, err := RunLease(context.Background(), LeaseConfig{
		StartRound: 9, Rounds: 3,
		Gen:  leaseGen(1),
		Emit: func(int, []results.Sample) error { return nil },
	})
	if err == nil {
		t.Fatal("inverted window accepted")
	}
}
