// Package engine is the parallel campaign execution engine: it shards a
// round-structured workload across a worker pool, runs each shard on its
// own goroutine with its own batched sample stream, and merges shard
// outputs into the sink in canonical (round-major, shard-ascending) order.
// Because the merge order reconstructs the serial iteration order exactly,
// the emitted dataset is byte-identical to a single-goroutine run for any
// worker count — the seeded-PRNG determinism the paper's methodology
// relies on survives parallelism.
//
// The engine also owns restartability: it periodically persists a small
// JSON checkpoint (completed-round watermark per shard plus the sink's
// durable byte offset) so an interrupted multi-month run resumes from the
// last checkpoint instead of restarting, applies backpressure through
// bounded per-shard queues, and retries transient sink errors a bounded
// number of times.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/results"
)

// GenFunc synthesizes the samples of one (shard, round) cell, emitting
// them in deterministic order. It must be safe for concurrent calls with
// distinct shards and must not retain the emitted samples.
type GenFunc func(ctx context.Context, shard, round int, emit func(results.Sample) error) error

// CommitFunc makes everything written to the sink so far durable and
// returns the resulting byte offset. The engine calls it before writing a
// checkpoint so the recorded offset never points past flushed data.
type CommitFunc func() (int64, error)

// Defaults for the tunable knobs; zero values in Config select these.
const (
	DefaultQueueDepth      = 4
	DefaultMaxRetries      = 3
	DefaultCheckpointEvery = 16
)

// Config describes one engine run.
type Config struct {
	// Workers is the shard/worker count; values < 1 run one shard.
	Workers int
	// Rounds is the total round count of the campaign window.
	Rounds int
	// StartRound is the first round to execute (resume watermark + 1).
	StartRound int
	// StartSamples seeds the emitted-sample counter on resume so totals
	// and progress metrics account for the pre-checkpoint prefix.
	StartSamples uint64

	// QueueDepth bounds the per-shard batch queue (backpressure): a shard
	// may run at most QueueDepth rounds ahead of the merger.
	QueueDepth int
	// MaxRetries bounds per-sample retries of transient sink errors.
	MaxRetries int
	// BatchHint is the expected sample count of one (shard, round) cell;
	// workers preallocate batch buffers to this capacity so the hot loop
	// avoids append-growth reallocation. Zero means no preallocation.
	BatchHint int

	// Gen produces each (shard, round) batch.
	Gen GenFunc
	// Sink receives every sample in canonical order.
	Sink func(results.Sample) error

	// Commit, CheckpointPath and CheckpointEvery enable checkpointing:
	// every CheckpointEvery merged rounds the engine commits the sink and
	// atomically rewrites CheckpointPath. Checkpointing is skipped unless
	// both Commit and CheckpointPath are set.
	Commit          CommitFunc
	CheckpointPath  string
	CheckpointEvery int
	// Fingerprint identifies the workload configuration; it is stored in
	// checkpoints and validated on resume by the caller.
	Fingerprint string

	// OnRound, when set, observes each merged round (its index and sample
	// count) from the merger goroutine.
	OnRound func(round int, samples uint64)

	// OnCheckpoint, when set, runs from the merger goroutine after each
	// checkpoint is durably written, with the checkpointed round and the
	// committed sink offset. The sink is quiesced for the duration — no
	// writes happen until the hook returns — so the hook may read the
	// samples file up to offset (e.g. to refresh an analysis snapshot).
	OnCheckpoint func(round int, offset int64)

	// Metrics, when set, receives shard progress, queue depth, merge
	// stalls, retry and checkpoint instruments.
	Metrics *Metrics

	// Log, when set, receives structured events (checkpoint writes, sink
	// retries, shard failures) for the run's flight recorder.
	Log *obs.Logger
}

// batch is one (shard, round) cell traveling from a worker to the merger.
type batch struct {
	round   int
	samples []results.Sample
	err     error
}

// Run executes the configured campaign. It returns the total number of
// samples emitted to the sink (including StartSamples) and the first
// error encountered; on error the sink may hold a partial round, which is
// exactly what checkpoints exist to recover from.
func Run(ctx context.Context, cfg Config) (uint64, error) {
	if cfg.Gen == nil || cfg.Sink == nil {
		return cfg.StartSamples, errors.New("engine: nil Gen or Sink")
	}
	if cfg.Rounds < 0 || cfg.StartRound < 0 || cfg.StartRound > cfg.Rounds {
		return cfg.StartSamples, fmt.Errorf("engine: invalid round window start=%d rounds=%d", cfg.StartRound, cfg.Rounds)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	queue := cfg.QueueDepth
	if queue <= 0 {
		queue = DefaultQueueDepth
	}
	ckEvery := cfg.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = DefaultCheckpointEvery
	}
	checkpointing := cfg.CheckpointPath != "" && cfg.Commit != nil
	m := cfg.Metrics

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	chans := make([]chan batch, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		ch := make(chan batch, queue)
		chans[s] = ch
		wg.Add(1)
		go func(shard int, ch chan<- batch) {
			defer wg.Done()
			defer close(ch)
			prog := m.shardGauge(shard)
			for round := cfg.StartRound; round < cfg.Rounds; round++ {
				if runCtx.Err() != nil {
					return
				}
				buf := make([]results.Sample, 0, cfg.BatchHint)
				err := cfg.Gen(runCtx, shard, round, func(s results.Sample) error {
					buf = append(buf, s)
					return nil
				})
				select {
				case ch <- batch{round: round, samples: buf, err: err}:
				case <-runCtx.Done():
					return
				}
				if err != nil {
					return
				}
				prog.Set(float64(round + 1))
			}
		}(s, ch)
	}

	emitted := cfg.StartSamples
	peakDepth := 0
	var runErr error
merge:
	for round := cfg.StartRound; round < cfg.Rounds; round++ {
		roundStart := emitted
		for s := 0; s < workers; s++ {
			b, ok := recvBatch(runCtx, chans[s], m)
			if !ok {
				// The shard quit without delivering this round: either the
				// context was cancelled or the worker died after an error
				// batch we have already consumed.
				if runErr = context.Cause(runCtx); runErr == nil {
					runErr = fmt.Errorf("engine: shard %d stopped before round %d", s, round)
				}
				break merge
			}
			if b.err != nil {
				runErr = fmt.Errorf("engine: shard %d round %d: %w", s, b.round, b.err)
				break merge
			}
			if b.round != round {
				runErr = fmt.Errorf("engine: shard %d delivered round %d out of order, want %d", s, b.round, round)
				break merge
			}
			for _, smp := range b.samples {
				if err := writeWithRetry(cfg.Sink, smp, cfg.MaxRetries, m, cfg.Log); err != nil {
					runErr = err
					break merge
				}
				emitted++
			}
		}
		{
			depth := 0
			for _, ch := range chans {
				depth += len(ch)
			}
			if depth > peakDepth {
				peakDepth = depth
			}
			if m != nil {
				m.QueueDepth.Set(float64(depth))
				m.QueueDepthPeak.Set(float64(peakDepth))
				m.RoundsMerged.Set(float64(round + 1))
			}
		}
		if cfg.OnRound != nil {
			cfg.OnRound(round, emitted-roundStart)
		}
		if checkpointing && (round+1-cfg.StartRound)%ckEvery == 0 && round+1 < cfg.Rounds {
			if err := writeCheckpoint(cfg, workers, round, emitted); err != nil {
				runErr = err
				break merge
			}
		}
	}

	// Unblock workers stuck on a full queue, then drain and join them.
	cancel()
	for _, ch := range chans {
		for range ch {
		}
	}
	wg.Wait()
	if runErr != nil {
		cfg.Log.Error("engine run failed", "error", runErr, "samples", emitted)
	} else {
		cfg.Log.Info("engine run complete",
			"rounds", cfg.Rounds, "workers", workers, "samples", emitted, "peak_queue_depth", peakDepth)
	}
	return emitted, runErr
}

// recvBatch receives the next batch from a shard channel, counting a
// merge stall when the merger would block waiting for the shard.
func recvBatch(ctx context.Context, ch <-chan batch, m *Metrics) (batch, bool) {
	select {
	case b, ok := <-ch:
		return b, ok
	default:
	}
	m.mergeStall()
	select {
	case b, ok := <-ch:
		return b, ok
	case <-ctx.Done():
		// Give a delivered batch priority over cancellation so shutdown
		// does not drop work that already made it through the queue.
		select {
		case b, ok := <-ch:
			return b, ok
		default:
			return batch{}, false
		}
	}
}

// writeWithRetry pushes one sample into the sink, retrying transient
// errors up to maxRetries extra attempts.
func writeWithRetry(sink func(results.Sample) error, s results.Sample, maxRetries int, m *Metrics, log *obs.Logger) error {
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}
	var err error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if err = sink(s); err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		m.sinkRetry()
		log.Warn("sink retry", "attempt", attempt+1, "error", err)
	}
	return fmt.Errorf("engine: sink still failing after %d retries: %w", maxRetries, err)
}

// writeCheckpoint commits the sink and atomically persists the watermark.
func writeCheckpoint(cfg Config, workers, round int, emitted uint64) error {
	offset, err := cfg.Commit()
	if err != nil {
		return fmt.Errorf("engine: checkpoint commit: %w", err)
	}
	cp := Checkpoint{
		Version:     CheckpointVersion,
		Fingerprint: cfg.Fingerprint,
		Workers:     workers,
		Round:       round,
		Samples:     emitted,
		SinkOffset:  offset,
		Shards:      make([]ShardMark, workers),
	}
	// The merge is round-synchronous, so every shard's durable watermark
	// coincides with the merged round; the per-shard form is kept so the
	// format survives a future asynchronous merger.
	for s := range cp.Shards {
		cp.Shards[s] = ShardMark{Shard: s, Round: round}
	}
	if err := cp.Save(cfg.CheckpointPath); err != nil {
		return err
	}
	cfg.Metrics.checkpointWrite()
	cfg.Log.Info("checkpoint written",
		"path", cfg.CheckpointPath, "round", round, "samples", emitted, "sink_offset", offset)
	if cfg.OnCheckpoint != nil {
		cfg.OnCheckpoint(round, offset)
	}
	return nil
}

// transientError marks a sink error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the engine's sink retry policy applies to it.
// A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// retryable via Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}
