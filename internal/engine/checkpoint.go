package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// CheckpointVersion is the current checkpoint format version. It is
// exported for external checkpoint writers (the cluster coordinator
// persists its merge watermark in the same format, so engine and
// cluster runs resume interchangeably).
const CheckpointVersion = 1

// ShardMark records one shard's completed-round watermark.
type ShardMark struct {
	Shard int `json:"shard"`
	Round int `json:"round"`
}

// Checkpoint is the engine's persisted resume state: everything needed to
// continue an interrupted run without re-synthesizing the merged prefix.
// SinkOffset is the durable byte length of the sink when the checkpoint
// was taken; resuming truncates the sink back to it, dropping whatever
// partial round followed.
type Checkpoint struct {
	Version     int         `json:"version"`
	Fingerprint string      `json:"fingerprint"`
	Workers     int         `json:"workers"`
	Round       int         `json:"round"` // last fully merged round
	Samples     uint64      `json:"samples"`
	SinkOffset  int64       `json:"sink_offset"`
	Shards      []ShardMark `json:"shards"`
}

// Validate rejects structurally broken checkpoints.
func (c *Checkpoint) Validate() error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("engine: unsupported checkpoint version %d", c.Version)
	}
	if c.Round < 0 || c.SinkOffset < 0 || c.Workers < 1 {
		return fmt.Errorf("engine: corrupt checkpoint (round=%d offset=%d workers=%d)",
			c.Round, c.SinkOffset, c.Workers)
	}
	for _, s := range c.Shards {
		if s.Round < c.Round {
			return fmt.Errorf("engine: shard %d watermark %d behind merged round %d",
				s.Shard, s.Round, c.Round)
		}
	}
	return nil
}

// Save atomically writes the checkpoint: a temp file in the same
// directory followed by a rename, so a crash mid-write leaves the
// previous checkpoint intact.
func (c *Checkpoint) Save(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ErrNoCheckpoint reports that a resume was requested but no checkpoint
// file exists (the run either never checkpointed or already completed).
var ErrNoCheckpoint = errors.New("engine: no checkpoint")

// LoadCheckpoint reads and validates a checkpoint file. A missing file
// maps to ErrNoCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w at %s", ErrNoCheckpoint, path)
		}
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("engine: corrupt checkpoint %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
