// Package analysisutil provides shared test/benchmark scaffolding: a
// one-call world + campaign fixture so multi-seed stability checks and
// benchmarks do not each reimplement the setup.
package analysisutil

import (
	"context"
	"fmt"

	"repro/internal/atlas"
	"repro/internal/results"
	"repro/internal/world"
)

// Fixture bundles a built world with a completed in-memory campaign.
type Fixture struct {
	World *world.World
	Mem   *results.Memory
	Cfg   atlas.CampaignConfig
}

// BuildFixture assembles a world with the given seed and census size and
// runs the standard test-scale campaign over it.
func BuildFixture(ctx context.Context, seed uint64, probes int) (*Fixture, error) {
	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	cfg := atlas.TestCampaign()
	var mem results.Memory
	if _, err := w.Platform.RunCampaign(ctx, cfg, mem.Add); err != nil {
		return nil, err
	}
	return &Fixture{World: w, Mem: &mem, Cfg: cfg}, nil
}

// SeedName formats a seed for subtest names.
func SeedName(seed uint64) string { return fmt.Sprintf("seed-%d", seed) }
