package scan

import (
	"strconv"

	"repro/internal/colf"
	"repro/internal/obs"
)

// Metrics are the scanner's instruments. A nil *Metrics (or any nil
// field) disables that instrument; the scanner never guards.
type Metrics struct {
	// Scans counts completed scans.
	Scans *obs.Counter
	// Samples counts samples decoded across all scans.
	Samples *obs.Counter
	// Bytes counts file bytes covered across all scans.
	Bytes *obs.Counter
	// Fallbacks counts lines that fell back to encoding/json.
	Fallbacks *obs.Counter
	// SamplesPerSec is the decode throughput of the latest scan.
	SamplesPerSec *obs.Gauge
	// BytesPerSec is the byte throughput of the latest scan.
	BytesPerSec *obs.Gauge
	// Utilization is the mean worker busy fraction of the latest scan.
	Utilization *obs.Gauge
	// WorkerBusy is the per-worker busy time of the latest scan, seconds.
	WorkerBusy *obs.GaugeVec // worker
	// Colf holds the columnar reader's block accounting, recorded only
	// by binary scans.
	Colf *colf.Metrics
}

// NewMetrics registers the scanner instrument set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Scans: reg.Counter("scan_total",
			"Completed dataset scans."),
		Samples: reg.Counter("scan_samples_total",
			"Samples decoded by the parallel scanner."),
		Bytes: reg.Counter("scan_bytes_total",
			"Dataset bytes covered by the parallel scanner."),
		Fallbacks: reg.Counter("scan_decode_fallbacks_total",
			"Lines the fast-path decoder handed to encoding/json."),
		SamplesPerSec: reg.Gauge("scan_samples_per_second",
			"Decode throughput of the latest scan."),
		BytesPerSec: reg.Gauge("scan_bytes_per_second",
			"Byte throughput of the latest scan."),
		Utilization: reg.Gauge("scan_worker_utilization",
			"Mean worker busy fraction of the latest scan (0-1)."),
		WorkerBusy: reg.GaugeVec("scan_worker_busy_seconds",
			"Per-worker busy time of the latest scan.", "worker"),
		Colf: colf.NewMetrics(reg),
	}
}

// observe records one completed scan.
func (m *Metrics) observe(st Stats) {
	if m == nil {
		return
	}
	m.Scans.Inc()
	m.Samples.Add(st.Samples)
	m.Bytes.Add(uint64(st.Bytes))
	m.Fallbacks.Add(st.Fallbacks)
	if st.Duration > 0 {
		m.SamplesPerSec.Set(st.SamplesPerSec())
		m.BytesPerSec.Set(st.MBPerSec() * 1e6)
	}
	m.Utilization.Set(st.Utilization())
	for w, b := range st.Busy {
		m.WorkerBusy.With(strconv.Itoa(w)).Set(b.Seconds())
	}
	if st.Binary {
		m.Colf.Observe(st.BlocksRead, st.BlocksSkipped, st.BytesDecoded)
	}
}
