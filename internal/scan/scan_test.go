package scan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/colf"
	"repro/internal/obs"
	"repro/internal/results"
)

// tallyPass counts samples and accumulates an order-sensitive checksum
// (a rotate-xor fold over each sample's probe and RTT bits), so any
// merge-order mistake shows up as a checksum mismatch against the
// sequential scan. It implements BlockPass with a kernel that folds
// the column arrays directly; batch-vs-row equivalence tests pin that
// both paths produce the same bits.
type tallyPass struct {
	n    uint64
	fold uint64
}

// tallyMix folds one sample into the checksum. The rotation makes the
// fold order-sensitive; the integer ops keep the loop free of the
// long-latency float divides an accumulating benchmark pass must not
// pay per row.
func tallyMix(fold uint64, probe int, rtt float64) uint64 {
	return bits.RotateLeft64(fold, 13) ^ (math.Float64bits(rtt) + uint64(probe)*0x9E3779B97F4A7C15)
}

func (p *tallyPass) Observe(s results.Sample) error {
	p.n++
	p.fold = tallyMix(p.fold, s.ProbeID, s.RTTms)
	return nil
}

// Columns: the kernel reads only the always-decoded probe and RTT
// columns, so the scanner can skip timestamp and region-string decode.
func (p *tallyPass) Columns() colf.ColumnSet { return 0 }

func (p *tallyPass) ObserveBlock(blk *colf.Block) error {
	fold := p.fold
	for i, probe := range blk.Probe {
		fold = tallyMix(fold, probe, blk.RTT[i])
	}
	p.fold = fold
	p.n += uint64(len(blk.Probe))
	return nil
}

func (p *tallyPass) Merge(other Pass) error {
	o := other.(*tallyPass)
	p.n += o.n
	// Replaying the fold is impossible without the samples; instead keep
	// a sequence-sensitive combination that only matches the sequential
	// result if merge order equals file order AND each shard saw a
	// contiguous run. (Good enough to catch ordering bugs in tests.)
	p.fold = bits.RotateLeft64(p.fold, 13) ^ o.fold
	return nil
}

// orderPass records every probe ID in observation order and concatenates
// on merge — merged output must equal the file order exactly.
type orderPass struct{ ids []int }

func (p *orderPass) Observe(s results.Sample) error {
	p.ids = append(p.ids, s.ProbeID)
	return nil
}

func (p *orderPass) Merge(other Pass) error {
	p.ids = append(p.ids, other.(*orderPass).ids...)
	return nil
}

func writeDataset(t testing.TB, n int) (path string, ids []int) {
	t.Helper()
	dir := t.TempDir()
	path = filepath.Join(dir, "samples.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := results.NewWriter(f)
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	regions := []string{"aws/us-east-1", "gcp/europe-west4", "azure/eastus"}
	for i := 0; i < n; i++ {
		s := results.Sample{
			ProbeID: 1 + rng.Intn(500),
			Region:  regions[rng.Intn(len(regions))],
			Time:    base.Add(time.Duration(i) * time.Second),
			RTTms:   0.1 + 300*rng.Float64(),
			Lost:    rng.Intn(20) == 0,
		}
		if s.Lost {
			s.RTTms = 1 // writer validates; reader sees lost flag
		}
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ProbeID)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, ids
}

func TestShardFileAlignment(t *testing.T) {
	path, _ := writeDataset(t, 503)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 4, 7, 16, 1000} {
		shards, size, err := shardFile(f, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if size != st.Size() {
			t.Fatalf("n=%d: size %d, want %d", n, size, st.Size())
		}
		var covered int64
		for i, sh := range shards {
			if sh.Off != covered {
				t.Fatalf("n=%d: shard %d starts at %d, want %d (gap or overlap)", n, i, sh.Off, covered)
			}
			if sh.Len <= 0 {
				t.Fatalf("n=%d: shard %d has length %d", n, i, sh.Len)
			}
			if sh.Off > 0 && data[sh.Off-1] != '\n' {
				t.Fatalf("n=%d: shard %d starts mid-line at %d", n, i, sh.Off)
			}
			covered += sh.Len
		}
		if covered != size {
			t.Fatalf("n=%d: shards cover %d bytes, want %d", n, covered, size)
		}
		if len(shards) > n {
			t.Fatalf("n=%d: got %d shards", n, len(shards))
		}
	}
}

func TestShardFileEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	shards, size, err := shardFile(f, 4, 0)
	if err != nil || size != 0 || len(shards) != 0 {
		t.Fatalf("empty file: shards=%v size=%d err=%v", shards, size, err)
	}
}

// TestFilePreservesOrder is the core determinism check: for any worker
// count, merged per-worker aggregates observe the file order exactly.
func TestFilePreservesOrder(t *testing.T) {
	path, wantIDs := writeDataset(t, 1201)
	for _, workers := range []int{1, 2, 4, 7, 64} {
		var keep []*orderPass
		st, err := File(context.Background(), Config{
			Path:    path,
			Workers: workers,
			NewPasses: func(w int) ([]Pass, error) {
				p := &orderPass{}
				keep = append(keep, p)
				return []Pass{p}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Samples != uint64(len(wantIDs)) {
			t.Errorf("workers=%d: %d samples, want %d", workers, st.Samples, len(wantIDs))
		}
		if st.Fallbacks != 0 {
			t.Errorf("workers=%d: %d fallback decodes on writer-shaped lines", workers, st.Fallbacks)
		}
		got := keep[0].ids
		if len(got) != len(wantIDs) {
			t.Fatalf("workers=%d: merged %d ids, want %d", workers, len(got), len(wantIDs))
		}
		for i := range wantIDs {
			if got[i] != wantIDs[i] {
				t.Fatalf("workers=%d: id[%d] = %d, want %d (order broken)", workers, i, got[i], wantIDs[i])
			}
		}
	}
}

func TestFileSkipsEmptyLinesAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "samples.jsonl")
	content := `{"probe":1,"region":"r","t":"2026-01-01T00:00:00Z","rtt_ms":5}

{"probe": 2, "region": "r", "t": "2026-01-01T00:00:01Z", "rtt_ms": 6}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var keep []*orderPass
	st, err := File(context.Background(), Config{
		Path:    path,
		Workers: 1,
		NewPasses: func(w int) ([]Pass, error) {
			p := &orderPass{}
			keep = append(keep, p)
			return []Pass{p}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 2 {
		t.Errorf("Samples = %d, want 2 (empty line skipped)", st.Samples)
	}
	if st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1 (whitespaced line)", st.Fallbacks)
	}
	if len(keep[0].ids) != 2 || keep[0].ids[0] != 1 || keep[0].ids[1] != 2 {
		t.Errorf("ids = %v, want [1 2]", keep[0].ids)
	}
}

func TestFileRejectsInvalidSample(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "samples.jsonl")
	content := `{"probe":1,"region":"r","t":"2026-01-01T00:00:00Z","rtt_ms":5}
{"probe":0,"region":"r","t":"2026-01-01T00:00:01Z","rtt_ms":5}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := File(context.Background(), Config{
		Path:      path,
		Workers:   2,
		NewPasses: func(w int) ([]Pass, error) { return []Pass{&tallyPass{}}, nil },
	})
	if err == nil || !strings.Contains(err.Error(), "bad probe id") {
		t.Errorf("invalid sample err = %v, want bad probe id", err)
	}
}

func TestFileOversizedLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "samples.jsonl")
	long := fmt.Sprintf(`{"probe":1,"region":"%s","t":"2026-01-01T00:00:00Z","rtt_ms":5}`,
		strings.Repeat("x", results.MaxLineBytes))
	if err := os.WriteFile(path, []byte(long+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := File(context.Background(), Config{
		Path:      path,
		Workers:   2,
		NewPasses: func(w int) ([]Pass, error) { return []Pass{&tallyPass{}}, nil },
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized line err = %v, want line-cap error", err)
	}
}

func TestFileEmptyDataset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "samples.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	calls := 0
	st, err := File(context.Background(), Config{
		Path:    path,
		Workers: 4,
		NewPasses: func(w int) ([]Pass, error) {
			calls++
			return []Pass{&tallyPass{}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("NewPasses called %d times on empty file, want 1 (worker 0)", calls)
	}
	if st.Samples != 0 || st.Workers != 0 {
		t.Errorf("Stats = %+v, want zero samples/workers", st)
	}
}

func TestFileCancellation(t *testing.T) {
	path, _ := writeDataset(t, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := File(ctx, Config{
		Path:      path,
		Workers:   2,
		NewPasses: func(w int) ([]Pass, error) { return []Pass{&tallyPass{}}, nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled scan err = %v, want context.Canceled", err)
	}
}

func TestFileMetrics(t *testing.T) {
	path, ids := writeDataset(t, 300)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	st, err := File(context.Background(), Config{
		Path:      path,
		Workers:   3,
		Metrics:   m,
		NewPasses: func(w int) ([]Pass, error) { return []Pass{&tallyPass{}}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Scans.Value() != 1 {
		t.Errorf("scan_total = %d, want 1", m.Scans.Value())
	}
	if m.Samples.Value() != uint64(len(ids)) {
		t.Errorf("scan_samples_total = %d, want %d", m.Samples.Value(), len(ids))
	}
	if m.Bytes.Value() != uint64(st.Bytes) {
		t.Errorf("scan_bytes_total = %d, want %d", m.Bytes.Value(), st.Bytes)
	}
	if u := m.Utilization.Value(); u < 0 || u > 1 {
		t.Errorf("scan_worker_utilization = %v, want within [0,1]", u)
	}
}
