package scan

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/colf"
	"repro/internal/obs"
	"repro/internal/results"
)

// scanBinary is the columnar twin of the JSONL shard scan: it shards
// the file by block index instead of by byte range, skips blocks whose
// zone maps cannot match cfg.Predicate, and merges the per-worker
// partials in file order — the same determinism guarantee, one layer
// up (blocks instead of lines). blocks is the block list to decode —
// the whole file on a cold scan, the suffix past the resume boundary
// otherwise, with prefixBlocks/prefixBytes naming what was skipped.
func scanBinary(ctx context.Context, cfg Config, f *os.File, size int64, workers int, span *obs.Span, blocks []colf.BlockInfo, prefixBlocks int, prefixBytes int64) (Stats, error) {
	// Zone-map pushdown: a block whose ranges cannot satisfy the
	// predicate is dropped here, before any worker touches its payload.
	// Kept blocks still carry non-matching rows; the row-level filter in
	// the decode loop below keeps the semantics exact.
	kept := blocks
	if !cfg.Predicate.Empty() {
		kept = make([]colf.BlockInfo, 0, len(blocks))
		for _, bi := range blocks {
			if cfg.Predicate.MatchZone(bi.Zone) {
				kept = append(kept, bi)
			}
		}
	}
	dataEnd := prefixBytes
	if len(blocks) > 0 {
		last := blocks[len(blocks)-1]
		dataEnd = last.Off + last.Len
	} else if dataEnd == 0 && size > 0 {
		dataEnd = colf.HeaderSize // headered but empty store
	}
	st := Stats{
		Binary:        true,
		Bytes:         size,
		BlocksTotal:   prefixBlocks + len(blocks),
		BlocksSkipped: len(blocks) - len(kept),
		PrefixBlocks:  prefixBlocks,
		PrefixBytes:   prefixBytes,
		DataEnd:       dataEnd,
	}

	groups := groupBlocks(kept, workers)
	if len(groups) == 0 {
		// Nothing to decode (empty dataset, or every block skipped):
		// build the worker-0 passes so the caller reports from a
		// consistent state, mirroring the empty-file JSONL path.
		if _, err := cfg.NewPasses(0); err != nil {
			return Stats{}, err
		}
		finishBinary(&st, span, cfg.Metrics)
		return st, nil
	}

	passes := make([][]Pass, len(groups))
	for w := range groups {
		ps, err := cfg.NewPasses(w)
		if err != nil {
			return Stats{}, err
		}
		if w > 0 && len(ps) != len(passes[0]) {
			return Stats{}, fmt.Errorf("scan: worker %d built %d passes, worker 0 built %d", w, len(ps), len(passes[0]))
		}
		passes[w] = ps
	}

	start := time.Now()
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg      sync.WaitGroup
		errs    = make([]error, len(groups))
		samples = make([]uint64, len(groups))
		decoded = make([]int64, len(groups))
		busy    = make([]time.Duration, len(groups))
	)
	for w, group := range groups {
		wg.Add(1)
		go func(w int, group []colf.BlockInfo) {
			defer wg.Done()
			t0 := time.Now()
			samples[w], decoded[w], errs[w] = scanBlocks(scanCtx, f, group, cfg.Predicate, passes[w])
			busy[w] = time.Since(t0)
			if errs[w] != nil {
				cancel() // fail fast: stop the other groups
			}
		}(w, group)
	}
	wg.Wait()

	st.Workers = len(groups)
	st.Busy = busy
	st.BlocksRead = len(kept)
	for w := range groups {
		st.Samples += samples[w]
		st.BytesDecoded += decoded[w]
	}
	// First error in group (= file) order, so the reported failure is
	// deterministic even when several groups fail.
	for w, err := range errs {
		if err != nil {
			st.Duration = time.Since(start)
			return st, fmt.Errorf("scan: block group %d (offset %d): %w", w, groups[w][0].Off, err)
		}
	}

	// Merge partials into the worker-0 passes in group order.
	for w := 1; w < len(groups); w++ {
		for i, p := range passes[0] {
			if err := p.Merge(passes[w][i]); err != nil {
				st.Duration = time.Since(start)
				return st, fmt.Errorf("scan: merging block group %d pass %d: %w", w, i, err)
			}
		}
	}
	st.Duration = time.Since(start)
	finishBinary(&st, span, cfg.Metrics)
	return st, nil
}

// finishBinary records the span attributes and metrics of a completed
// binary scan.
func finishBinary(st *Stats, span *obs.Span, m *Metrics) {
	span.SetAttr("format", "binary")
	span.SetAttr("workers", st.Workers)
	span.SetAttr("samples", st.Samples)
	span.SetAttr("bytes", st.Bytes)
	span.SetAttr("blocks_total", st.BlocksTotal)
	span.SetAttr("blocks_read", st.BlocksRead)
	span.SetAttr("blocks_skipped", st.BlocksSkipped)
	span.SetAttr("prefix_blocks", st.PrefixBlocks)
	span.SetAttr("bytes_decoded", st.BytesDecoded)
	span.SetAttr("samples_per_sec", st.SamplesPerSec())
	m.observe(*st)
}

// groupBlocks cuts the kept blocks into at most n contiguous groups of
// roughly equal encoded size, in file order. Contiguity is what makes
// the merge deterministic: concatenating the groups reconstructs the
// block sequence a sequential reader would decode.
func groupBlocks(blocks []colf.BlockInfo, n int) [][]colf.BlockInfo {
	if len(blocks) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	var total int64
	for _, b := range blocks {
		total += b.Len
	}
	groups := make([][]colf.BlockInfo, 0, n)
	start, startByte := 0, int64(0)
	covered := int64(0)
	for i, b := range blocks {
		covered += b.Len
		// Cut when this group reaches its proportional share of the
		// remaining bytes, always leaving at least one block per
		// remaining group.
		remainingGroups := n - len(groups)
		if remainingGroups <= 1 {
			continue
		}
		target := startByte + (total-startByte)/int64(remainingGroups)
		if covered >= target && len(blocks)-i-1 >= remainingGroups-1 {
			groups = append(groups, blocks[start:i+1])
			start, startByte = i+1, covered
		}
	}
	if start < len(blocks) {
		groups = append(groups, blocks[start:])
	}
	return groups
}

// scanBlocks decodes one contiguous block group and feeds every
// predicate-matching sample to ps.
func scanBlocks(ctx context.Context, f *os.File, group []colf.BlockInfo, pred *colf.Predicate, ps []Pass) (samples uint64, decoded int64, err error) {
	dec := colf.NewBlockDecoder()
	for _, bi := range group {
		if err := ctx.Err(); err != nil {
			return samples, decoded, err
		}
		blk, err := dec.Decode(f, bi)
		if err != nil {
			return samples, decoded, err
		}
		decoded += bi.Len
		for i := 0; i < blk.Rows(); i++ {
			if !pred.Empty() && !pred.MatchRow(blk.Probe[i], blk.TimeNano[i], blk.Region[i]) {
				continue
			}
			s := results.Sample{
				ProbeID: blk.Probe[i],
				Region:  blk.Region[i],
				Time:    time.Unix(0, blk.TimeNano[i]).UTC(),
				RTTms:   blk.RTT[i],
				Lost:    blk.Lost[i],
			}
			if err := s.Validate(); err != nil {
				return samples, decoded, fmt.Errorf("block at offset %d row %d: %w", bi.Off, i, err)
			}
			for _, p := range ps {
				if err := p.Observe(s); err != nil {
					return samples, decoded, err
				}
			}
			samples++
		}
	}
	return samples, decoded, nil
}
