package scan

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/colf"
	"repro/internal/obs"
	"repro/internal/results"
)

// scanBinary is the columnar twin of the JSONL shard scan: it shards
// the file by block index instead of by byte range, skips blocks whose
// zone maps cannot match cfg.Predicate, and merges the per-worker
// partials in file order — the same determinism guarantee, one layer
// up (blocks instead of lines). blocks is the block list to decode —
// the whole file on a cold scan, the suffix past the resume boundary
// otherwise, with prefixBlocks/prefixBytes naming what was skipped.
// r is the data source for block payloads — a *colf.Mapping when the
// platform maps files, the file handle otherwise.
func scanBinary(ctx context.Context, cfg Config, r io.ReaderAt, size int64, workers int, span *obs.Span, blocks []colf.BlockInfo, prefixBlocks int, prefixBytes int64) (Stats, error) {
	// Zone-map pushdown: a block whose ranges cannot satisfy the
	// predicate is dropped here, before any worker touches its payload.
	// Kept blocks still carry non-matching rows; the row-level filter in
	// the decode loop below keeps the semantics exact.
	kept := blocks
	if !cfg.Predicate.Empty() {
		kept = make([]colf.BlockInfo, 0, len(blocks))
		for _, bi := range blocks {
			if cfg.Predicate.MatchZone(bi.Zone) {
				kept = append(kept, bi)
			}
		}
	}
	dataEnd := prefixBytes
	if len(blocks) > 0 {
		last := blocks[len(blocks)-1]
		dataEnd = last.Off + last.Len
	} else if dataEnd == 0 && size > 0 {
		dataEnd = colf.HeaderSize // headered but empty store
	}
	st := Stats{
		Binary:        true,
		Bytes:         size,
		BlocksTotal:   prefixBlocks + len(blocks),
		BlocksSkipped: len(blocks) - len(kept),
		PrefixBlocks:  prefixBlocks,
		PrefixBytes:   prefixBytes,
		DataEnd:       dataEnd,
	}

	groups := groupBlocks(kept, workers)
	if len(groups) == 0 {
		// Nothing to decode (empty dataset, or every block skipped):
		// build the worker-0 passes so the caller reports from a
		// consistent state, mirroring the empty-file JSONL path.
		if _, err := cfg.NewPasses(0); err != nil {
			return Stats{}, err
		}
		finishBinary(&st, span, cfg.Metrics)
		return st, nil
	}

	passes := make([][]Pass, len(groups))
	for w := range groups {
		ps, err := cfg.NewPasses(w)
		if err != nil {
			return Stats{}, err
		}
		if w > 0 && len(ps) != len(passes[0]) {
			return Stats{}, fmt.Errorf("scan: worker %d built %d passes, worker 0 built %d", w, len(ps), len(passes[0]))
		}
		passes[w] = ps
	}

	start := time.Now()
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg   sync.WaitGroup
		errs = make([]error, len(groups))
		res  = make([]groupStats, len(groups))
		busy = make([]time.Duration, len(groups))
	)
	for w, group := range groups {
		wg.Add(1)
		go func(w int, group []colf.BlockInfo) {
			defer wg.Done()
			t0 := time.Now()
			res[w], errs[w] = scanBlocks(scanCtx, r, group, cfg.Predicate, passes[w], cfg.RowScan)
			busy[w] = time.Since(t0)
			if errs[w] != nil {
				cancel() // fail fast: stop the other groups
			}
		}(w, group)
	}
	wg.Wait()

	st.Workers = len(groups)
	st.Busy = busy
	for w := range groups {
		st.Samples += res[w].samples
		st.RowsScanned += res[w].rows
		st.BytesDecoded += res[w].decoded
		st.BlocksRead += res[w].read
		st.BlocksZone += res[w].zoned
	}
	// First error in group (= file) order, so the reported failure is
	// deterministic even when several groups fail.
	for w, err := range errs {
		if err != nil {
			st.Duration = time.Since(start)
			return st, fmt.Errorf("scan: block group %d (offset %d): %w", w, groups[w][0].Off, err)
		}
	}

	// Merge partials into the worker-0 passes in group order.
	for w := 1; w < len(groups); w++ {
		for i, p := range passes[0] {
			if err := p.Merge(passes[w][i]); err != nil {
				st.Duration = time.Since(start)
				return st, fmt.Errorf("scan: merging block group %d pass %d: %w", w, i, err)
			}
		}
	}
	st.Duration = time.Since(start)
	finishBinary(&st, span, cfg.Metrics)
	return st, nil
}

// finishBinary records the span attributes and metrics of a completed
// binary scan.
func finishBinary(st *Stats, span *obs.Span, m *Metrics) {
	span.SetAttr("format", "binary")
	span.SetAttr("workers", st.Workers)
	span.SetAttr("samples", st.Samples)
	span.SetAttr("bytes", st.Bytes)
	span.SetAttr("blocks_total", st.BlocksTotal)
	span.SetAttr("blocks_read", st.BlocksRead)
	span.SetAttr("blocks_skipped", st.BlocksSkipped)
	span.SetAttr("blocks_zone", st.BlocksZone)
	span.SetAttr("prefix_blocks", st.PrefixBlocks)
	span.SetAttr("bytes_decoded", st.BytesDecoded)
	span.SetAttr("rows_scanned", st.RowsScanned)
	span.SetAttr("samples_per_sec", st.SamplesPerSec())
	m.observe(*st)
}

// groupBlocks cuts the kept blocks into at most n contiguous groups of
// roughly equal encoded size, in file order. Contiguity is what makes
// the merge deterministic: concatenating the groups reconstructs the
// block sequence a sequential reader would decode.
func groupBlocks(blocks []colf.BlockInfo, n int) [][]colf.BlockInfo {
	if len(blocks) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	var total int64
	for _, b := range blocks {
		total += b.Len
	}
	groups := make([][]colf.BlockInfo, 0, n)
	start, startByte := 0, int64(0)
	covered := int64(0)
	for i, b := range blocks {
		covered += b.Len
		// Cut when this group reaches its proportional share of the
		// remaining bytes, always leaving at least one block per
		// remaining group.
		remainingGroups := n - len(groups)
		if remainingGroups <= 1 {
			continue
		}
		target := startByte + (total-startByte)/int64(remainingGroups)
		if covered >= target && len(blocks)-i-1 >= remainingGroups-1 {
			groups = append(groups, blocks[start:i+1])
			start, startByte = i+1, covered
		}
	}
	if start < len(blocks) {
		groups = append(groups, blocks[start:])
	}
	return groups
}

// groupStats is one worker's accounting: samples observed, rows
// decoded (before row filtering), payload bytes decoded, blocks
// decoded, and blocks resolved from zone pre-aggregates alone.
type groupStats struct {
	samples uint64
	rows    uint64
	decoded int64
	read    int
	zoned   int
}

// scanBlocks decodes one contiguous block group and feeds every
// predicate-matching sample to ps. Per block it picks the cheapest
// sufficient path, most specific first:
//
//   - zone: the predicate covers the zone and every pass can absorb the
//     zone's pre-aggregates — no decode at all;
//   - batch: the predicate covers the zone and every row passes the
//     validity sweep — BlockPass kernels see the column arrays, any
//     remaining passes share one per-row loop without filter or
//     validation overhead;
//   - row: everything else (partial predicate cover, a row the sweep
//     flagged, or cfg.RowScan) — the legacy loop, byte-identical error
//     text and per-row semantics included.
func scanBlocks(ctx context.Context, r io.ReaderAt, group []colf.BlockInfo, pred *colf.Predicate, ps []Pass, rowScan bool) (gs groupStats, err error) {
	dec := colf.NewBlockDecoder()

	// Classify the pass set once; every worker holds the same types.
	var batch []BlockPass
	var rowPs []Pass
	cols := colf.ColumnSet(0)
	if rowScan {
		rowPs = ps
	} else {
		for _, p := range ps {
			if bp, ok := p.(BlockPass); ok {
				batch = append(batch, bp)
				cols |= bp.Columns()
			} else {
				rowPs = append(rowPs, p)
			}
		}
	}
	if len(rowPs) > 0 {
		cols = colf.ColAll // the row loop materializes full samples
	}
	zoneAll := !rowScan && len(ps) > 0
	var zonePs []ZonePass
	if zoneAll {
		for _, p := range ps {
			zp, ok := p.(ZonePass)
			if !ok {
				zoneAll = false
				break
			}
			zonePs = append(zonePs, zp)
		}
	}

	for _, bi := range group {
		if err := ctx.Err(); err != nil {
			return gs, err
		}
		covered := pred.Empty() || pred.CoversZone(bi.Zone)
		if covered && zoneAll && canObserveZone(zonePs, bi.Zone) {
			for _, zp := range zonePs {
				if err := zp.ObserveZone(bi.Zone); err != nil {
					return gs, err
				}
			}
			gs.samples += uint64(bi.Zone.Rows)
			gs.zoned++
			continue
		}
		want := cols
		if rowScan || !covered {
			want = colf.ColAll
		}
		blk, err := dec.DecodeCols(r, bi, want)
		if err != nil {
			return gs, err
		}
		gs.read++
		gs.decoded += bi.Len
		rows := blk.Rows()
		gs.rows += uint64(rows)

		if !rowScan && covered && blockRowsValid(blk) {
			// blk.Zone is the CRC-verified footer zone, not the (unchecked)
			// index copy in bi.Zone — the sweep's trust anchor.
			for _, bp := range batch {
				if err := bp.ObserveBlock(blk); err != nil {
					return gs, err
				}
			}
			if len(rowPs) > 0 {
				// Covered and swept: no filter, no Validate, just the fold.
				for i := 0; i < rows; i++ {
					s := results.Sample{
						ProbeID: blk.Probe[i],
						Region:  blk.Region[i],
						Time:    time.Unix(0, blk.TimeNano[i]).UTC(),
						RTTms:   blk.RTT[i],
						Lost:    blk.Lost[i],
					}
					for _, p := range rowPs {
						if err := p.Observe(s); err != nil {
							return gs, err
						}
					}
				}
			}
			gs.samples += uint64(rows)
			continue
		}

		// Legacy row path. The sweep only ever sends a block here when
		// some row would fail validation, so re-decoding the skipped
		// columns first is rare; error text and the rows observed before
		// a bad one match the pre-batch scanner exactly.
		if want != colf.ColAll {
			if blk, err = dec.DecodeCols(r, bi, colf.ColAll); err != nil {
				return gs, err
			}
		}
		for i := 0; i < rows; i++ {
			if !pred.Empty() && !pred.MatchRow(blk.Probe[i], blk.TimeNano[i], blk.Region[i]) {
				continue
			}
			s := results.Sample{
				ProbeID: blk.Probe[i],
				Region:  blk.Region[i],
				Time:    time.Unix(0, blk.TimeNano[i]).UTC(),
				RTTms:   blk.RTT[i],
				Lost:    blk.Lost[i],
			}
			if err := s.Validate(); err != nil {
				return gs, fmt.Errorf("block at offset %d row %d: %w", bi.Off, i, err)
			}
			for _, p := range ps {
				if err := p.Observe(s); err != nil {
					return gs, err
				}
			}
			gs.samples++
		}
	}
	return gs, nil
}

// canObserveZone reports whether every pass can absorb z.
func canObserveZone(zonePs []ZonePass, z colf.Zone) bool {
	for _, zp := range zonePs {
		if !zp.CanObserveZone(z) {
			return false
		}
	}
	return true
}

// blockRowsValid reports whether every row of the block provably
// passes results.Sample.Validate, so the batch path can skip per-row
// validation. It reads only the CRC-verified footer zone: MinProbe > 0
// covers the probe check, a non-empty MinRegion rules out empty
// regions (the lexicographic minimum), and MinRTT > 0 covers every
// delivered row's RTT check (lost rows validate regardless of RTT).
// The zero-Time check needs no proof at all — time.Unix(0, n) is
// non-zero for every int64 n. It errs toward false (e.g. a NaN MinRTT
// fails the > 0 test and falls back to the row loop, which accepts
// NaN RTTs just as Validate does) — a false negative only costs
// speed, never correctness.
func blockRowsValid(blk *colf.Block) bool {
	z := &blk.Zone
	return z.MinProbe > 0 && z.MinRegion != "" && (z.Delivered == 0 || z.MinRTT > 0)
}
