package scan

import (
	"testing"
)

// FuzzSampleDecode is the decoder's differential fuzz: for any input
// line, the fast-path decoder must agree with encoding/json — same
// accept/reject outcome, same error text, and field-identical samples
// (checkAgainstStdlib carries the full contract).
func FuzzSampleDecode(f *testing.F) {
	for _, seed := range []string{
		`{"probe":42,"region":"aws/us-east-1","t":"2026-01-02T03:04:05Z","rtt_ms":12.5}`,
		`{"probe":42,"region":"aws/us-east-1","t":"2026-01-02T03:04:05.123456789Z","rtt_ms":12.5,"lost":true}`,
		`{"probe":1,"region":"gcp/x","t":"2024-02-29T00:00:00Z","rtt_ms":1e2}`,
		`{"lost":false,"rtt_ms":3,"t":"2026-01-01T00:00:00Z","region":"r","probe":7}`,
		`{"probe":-3}`,
		`{}`,
		`{"probe":1,"region":"aAb","t":"2026-01-01T00:00:00Z","rtt_ms":1}`,
		`{"probe":1,"region":"r","t":"2026-01-01T00:00:00+02:00","rtt_ms":1}`,
		`{"probe":1,"region":"r","t":"2026-13-40T99:99:99Z","rtt_ms":1}`,
		`{"probe":1,"region":"r","t":"2026-01-01T00:00:00Z","rtt_ms":1,"extra":9}`,
		`not json at all`,
		`{"probe":9007199254740993,"region":"r","t":"2026-01-01T00:00:00Z","rtt_ms":0.30000000000000004}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		checkAgainstStdlib(t, line)
	})
}
