package scan

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/colf"
	"repro/internal/obs"
	"repro/internal/results"
)

// genSamples builds a deterministic sample stream with strictly
// increasing timestamps (one per second), so time zone maps are tight
// and windowed predicates map cleanly onto block ranges.
func genSamples(n int) []results.Sample {
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	regions := []string{"aws/us-east-1", "gcp/europe-west4", "azure/eastus"}
	samples := make([]results.Sample, 0, n)
	for i := 0; i < n; i++ {
		s := results.Sample{
			ProbeID: 1 + rng.Intn(500),
			Region:  regions[rng.Intn(len(regions))],
			Time:    base.Add(time.Duration(i) * time.Second),
			RTTms:   0.1 + 300*rng.Float64(),
			Lost:    rng.Intn(20) == 0,
		}
		if s.Lost {
			s.RTTms = 1
		}
		samples = append(samples, s)
	}
	return samples
}

// writeBinary encodes samples into a colf file with the given block
// size (small blocks give multi-block files from small inputs).
func writeBinary(t testing.TB, samples []results.Sample, blockRows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "samples.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := colf.NewWriter(f)
	w.SetBlockRows(blockRows)
	for _, s := range samples {
		r := colf.Row{Probe: s.ProbeID, TimeNano: s.Time.UnixNano(), Region: s.Region, RTT: s.RTTms, Lost: s.Lost}
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeJSONL encodes the same samples in the legacy line format.
func writeJSONL(t testing.TB, samples []results.Sample) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "samples.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := results.NewWriter(f)
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// scanOrder runs an order-recording scan and returns the merged ids.
func scanOrder(t *testing.T, cfg Config) ([]int, Stats) {
	t.Helper()
	var keep []*orderPass
	cfg.NewPasses = func(w int) ([]Pass, error) {
		p := &orderPass{}
		keep = append(keep, p)
		return []Pass{p}, nil
	}
	st, err := File(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return keep[0].ids, st
}

// TestBinaryFilePreservesOrder mirrors TestFilePreservesOrder on the
// columnar path: for any worker count, the merged pass observes file
// order exactly, and the stats carry full block accounting.
func TestBinaryFilePreservesOrder(t *testing.T) {
	samples := genSamples(1201)
	path := writeBinary(t, samples, 64)
	for _, workers := range []int{1, 2, 4, 7, 64} {
		ids, st := scanOrder(t, Config{Path: path, Workers: workers})
		if !st.Binary {
			t.Fatalf("workers=%d: binary file scanned as JSONL", workers)
		}
		if st.Samples != uint64(len(samples)) {
			t.Errorf("workers=%d: %d samples, want %d", workers, st.Samples, len(samples))
		}
		if st.BlocksTotal != 19 { // ceil(1201/64)
			t.Errorf("workers=%d: BlocksTotal = %d, want 19", workers, st.BlocksTotal)
		}
		if st.BlocksRead != st.BlocksTotal || st.BlocksSkipped != 0 {
			t.Errorf("workers=%d: read %d/%d blocks, skipped %d on unfiltered scan",
				workers, st.BlocksRead, st.BlocksTotal, st.BlocksSkipped)
		}
		if st.BytesDecoded <= 0 || st.BytesDecoded >= st.Bytes {
			t.Errorf("workers=%d: BytesDecoded = %d, want in (0, %d)", workers, st.BytesDecoded, st.Bytes)
		}
		if len(ids) != len(samples) {
			t.Fatalf("workers=%d: merged %d ids, want %d", workers, len(ids), len(samples))
		}
		for i := range samples {
			if ids[i] != samples[i].ProbeID {
				t.Fatalf("workers=%d: id[%d] = %d, want %d (order broken)", workers, i, ids[i], samples[i].ProbeID)
			}
		}
	}
}

// TestBinaryPredicatePushdown is the zone-map acceptance check: a
// narrow time window decodes only the covering blocks, and the rows it
// yields are exactly the rows a JSONL scan with the same predicate
// yields.
func TestBinaryPredicatePushdown(t *testing.T) {
	samples := genSamples(4000)
	bpath := writeBinary(t, samples, 64) // ~63 blocks, one per ~64 seconds
	jpath := writeJSONL(t, samples)

	// A ~10-minute window in the middle of the ~67-minute stream.
	pred := &colf.Predicate{
		Since: samples[0].Time.Add(30 * time.Minute),
		Until: samples[0].Time.Add(40 * time.Minute),
	}
	var want []int
	for _, s := range samples {
		if !s.Time.Before(pred.Since) && s.Time.Before(pred.Until) {
			want = append(want, s.ProbeID)
		}
	}
	if len(want) == 0 || len(want) == len(samples) {
		t.Fatalf("degenerate window keeps %d of %d samples", len(want), len(samples))
	}

	for _, workers := range []int{1, 3, 8} {
		ids, st := scanOrder(t, Config{Path: bpath, Workers: workers, Predicate: pred})
		if st.Samples != uint64(len(want)) {
			t.Errorf("workers=%d: %d samples, want %d", workers, st.Samples, len(want))
		}
		if st.BlocksSkipped == 0 || st.BlocksRead+st.BlocksSkipped != st.BlocksTotal {
			t.Errorf("workers=%d: block accounting %d read + %d skipped != %d total",
				workers, st.BlocksRead, st.BlocksSkipped, st.BlocksTotal)
		}
		// The window covers ~10/67 of the stream; with per-block slack the
		// scan must still decode well under a quarter of the blocks.
		if 4*st.BlocksRead >= st.BlocksTotal {
			t.Errorf("workers=%d: windowed scan decoded %d/%d blocks, want < 25%%",
				workers, st.BlocksRead, st.BlocksTotal)
		}
		for i := range want {
			if ids[i] != want[i] {
				t.Fatalf("workers=%d: filtered id[%d] = %d, want %d", workers, i, ids[i], want[i])
			}
		}
		// Same predicate on the JSONL twin yields the same rows.
		jids, jst := scanOrder(t, Config{Path: jpath, Workers: workers, Predicate: pred})
		if jst.Binary {
			t.Fatal("JSONL twin sniffed as binary")
		}
		if len(jids) != len(ids) {
			t.Fatalf("workers=%d: jsonl kept %d rows, binary kept %d", workers, len(jids), len(ids))
		}
		for i := range ids {
			if jids[i] != ids[i] {
				t.Fatalf("workers=%d: formats disagree at row %d", workers, i)
			}
		}
	}
}

// TestBinaryProbeAndRegionPushdown exercises the non-time zone
// dimensions end to end.
func TestBinaryProbeAndRegionPushdown(t *testing.T) {
	// Probe IDs ascend with the row index, so probe zones partition the
	// file just like timestamps do.
	samples := genSamples(2000)
	for i := range samples {
		samples[i].ProbeID = i + 1
	}
	path := writeBinary(t, samples, 64)
	pred := &colf.Predicate{MinProbe: 501, MaxProbe: 700}
	ids, st := scanOrder(t, Config{Path: path, Workers: 4, Predicate: pred})
	if len(ids) != 200 || ids[0] != 501 || ids[199] != 700 {
		t.Fatalf("probe window kept %d rows [%v..]", len(ids), ids[:1])
	}
	if st.BlocksSkipped == 0 {
		t.Error("probe window skipped no blocks")
	}

	// Region prefixes: every block holds all three regions, so nothing
	// skips, but rows still filter exactly.
	pred = &colf.Predicate{RegionPrefix: "aws/"}
	var want int
	for _, s := range samples {
		if strings.HasPrefix(s.Region, "aws/") {
			want++
		}
	}
	_, st = scanOrder(t, Config{Path: path, Workers: 4, Predicate: pred})
	if st.Samples != uint64(want) {
		t.Errorf("region filter kept %d rows, want %d", st.Samples, want)
	}
}

// TestBinaryAllBlocksSkipped covers the degenerate pushdown: a window
// before the stream skips everything and still reports consistently.
func TestBinaryAllBlocksSkipped(t *testing.T) {
	samples := genSamples(500)
	path := writeBinary(t, samples, 64)
	pred := &colf.Predicate{Until: samples[0].Time.Add(-time.Hour)}
	calls := 0
	st, err := File(context.Background(), Config{
		Path:      path,
		Workers:   4,
		Predicate: pred,
		NewPasses: func(w int) ([]Pass, error) {
			calls++
			return []Pass{&tallyPass{}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("NewPasses called %d times with every block skipped, want 1", calls)
	}
	if st.Samples != 0 || st.BlocksRead != 0 || st.BlocksSkipped != st.BlocksTotal || st.BytesDecoded != 0 {
		t.Errorf("all-skipped stats = %+v", st)
	}
}

// TestBinaryEmptyDataset scans a header-plus-index file with no rows.
func TestBinaryEmptyDataset(t *testing.T) {
	path := writeBinary(t, nil, 64)
	calls := 0
	st, err := File(context.Background(), Config{
		Path:    path,
		Workers: 4,
		NewPasses: func(w int) ([]Pass, error) {
			calls++
			return []Pass{&tallyPass{}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || st.Samples != 0 || st.Workers != 0 || st.BlocksTotal != 0 {
		t.Errorf("empty binary dataset: calls=%d stats=%+v", calls, st)
	}
}

// TestBinaryCorruptBlock flips one payload byte and expects the scan to
// fail deterministically, naming the block group.
func TestBinaryCorruptBlock(t *testing.T) {
	samples := genSamples(1000)
	path := writeBinary(t, samples, 64)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[colf.HeaderSize+40] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = File(context.Background(), Config{
		Path:      path,
		Workers:   3,
		NewPasses: func(w int) ([]Pass, error) { return []Pass{&tallyPass{}}, nil },
	})
	if err == nil || !strings.Contains(err.Error(), "block group 0") {
		t.Errorf("corrupt block err = %v, want block group 0 failure", err)
	}
}

// TestBinaryCancellation mirrors TestFileCancellation on the block path.
func TestBinaryCancellation(t *testing.T) {
	path := writeBinary(t, genSamples(5000), 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := File(ctx, Config{
		Path:      path,
		Workers:   2,
		NewPasses: func(w int) ([]Pass, error) { return []Pass{&tallyPass{}}, nil },
	})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("cancelled scan err = %v, want context.Canceled", err)
	}
}

// TestBinaryMetrics checks the colf_* instruments record the block
// accounting of binary scans.
func TestBinaryMetrics(t *testing.T) {
	samples := genSamples(1000)
	path := writeBinary(t, samples, 64)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	pred := &colf.Predicate{Until: samples[500].Time}
	st, err := File(context.Background(), Config{
		Path:      path,
		Workers:   3,
		Metrics:   m,
		Predicate: pred,
		NewPasses: func(w int) ([]Pass, error) { return []Pass{&tallyPass{}}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Colf.BlocksRead.Value(); got != uint64(st.BlocksRead) {
		t.Errorf("colf_blocks_read_total = %d, want %d", got, st.BlocksRead)
	}
	if got := m.Colf.BlocksSkipped.Value(); got != uint64(st.BlocksSkipped) {
		t.Errorf("colf_blocks_skipped_total = %d, want %d", got, st.BlocksSkipped)
	}
	if got := m.Colf.BytesDecoded.Value(); got != uint64(st.BytesDecoded) {
		t.Errorf("colf_bytes_decoded_total = %d, want %d", got, st.BytesDecoded)
	}
	if m.Samples.Value() != st.Samples {
		t.Errorf("scan_samples_total = %d, want %d", m.Samples.Value(), st.Samples)
	}
}

// TestGroupBlocks pins the block grouper's invariants: contiguous
// cover, at most n groups, no empty groups, for awkward shapes.
func TestGroupBlocks(t *testing.T) {
	mk := func(lens ...int64) []colf.BlockInfo {
		blocks := make([]colf.BlockInfo, len(lens))
		off := int64(colf.HeaderSize)
		for i, l := range lens {
			blocks[i] = colf.BlockInfo{Off: off, Len: l}
			off += l
		}
		return blocks
	}
	cases := [][]colf.BlockInfo{
		mk(100),
		mk(100, 100, 100),
		mk(1, 1, 1, 1000),
		mk(1000, 1, 1, 1),
		mk(50, 60, 70, 80, 90, 100, 110, 120, 130, 140),
	}
	for ci, blocks := range cases {
		for _, n := range []int{1, 2, 3, 7, 100} {
			groups := groupBlocks(blocks, n)
			if len(groups) > n {
				t.Fatalf("case %d n=%d: %d groups", ci, n, len(groups))
			}
			i := 0
			for gi, g := range groups {
				if len(g) == 0 {
					t.Fatalf("case %d n=%d: group %d empty", ci, n, gi)
				}
				for _, b := range g {
					if b.Off != blocks[i].Off {
						t.Fatalf("case %d n=%d: group %d breaks contiguity at block %d", ci, n, gi, i)
					}
					i++
				}
			}
			if i != len(blocks) {
				t.Fatalf("case %d n=%d: groups cover %d blocks, want %d", ci, n, i, len(blocks))
			}
		}
	}
	if groupBlocks(nil, 4) != nil {
		t.Error("empty block list produced groups")
	}
}
