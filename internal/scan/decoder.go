package scan

import (
	"encoding/json"
	"strconv"
	"time"

	"repro/internal/results"
)

// Decoder turns one JSONL line into a results.Sample. The hot path is a
// hand-rolled parser for the exact byte shape results.Writer emits
// (compact object, known keys, RFC3339 UTC timestamps); it allocates
// only for never-seen region strings, which it interns per decoder. Any
// line the fast path cannot prove it handles byte-for-byte like
// encoding/json — escapes, whitespace, unknown or duplicate keys,
// unusual number or timestamp spellings — falls back to json.Unmarshal,
// so the decoder's visible behaviour is exactly the stdlib's.
//
// A Decoder is not safe for concurrent use; the scanner gives each
// worker its own.
type Decoder struct {
	intern map[string]string
	// Fallbacks counts lines routed through encoding/json.
	Fallbacks uint64
}

// NewDecoder returns a ready Decoder.
func NewDecoder() *Decoder {
	return &Decoder{intern: make(map[string]string)}
}

// Decode parses one line (without its trailing newline). The returned
// sample is identical to what json.Unmarshal into a zero Sample yields,
// and errors are json.Unmarshal's.
func (d *Decoder) Decode(line []byte) (results.Sample, error) {
	if s, ok := d.fast(line); ok {
		return s, nil
	}
	d.Fallbacks++
	var s results.Sample
	if err := json.Unmarshal(line, &s); err != nil {
		return results.Sample{}, err
	}
	return s, nil
}

// Key bitmask for duplicate detection.
const (
	keyProbe = 1 << iota
	keyRegion
	keyTime
	keyRTT
	keyLost
)

// fast parses the compact encoding. ok=false means "use the fallback",
// never "invalid line" — the fallback owns error semantics.
func (d *Decoder) fast(b []byte) (results.Sample, bool) {
	var s results.Sample
	n := len(b)
	if n < 2 || b[0] != '{' || b[n-1] != '}' {
		return results.Sample{}, false
	}
	if n == 2 { // {} decodes to the zero Sample
		return s, true
	}
	i := 1
	var seen uint8
	for {
		// "key":
		if b[i] != '"' {
			return results.Sample{}, false
		}
		j := i + 1
		for j < n-1 && b[j] != '"' {
			// Escapes and control bytes change meaning; non-ASCII may be
			// invalid UTF-8, which json coerces to U+FFFD. All bail.
			if b[j] == '\\' || b[j] < 0x20 || b[j] >= 0x80 {
				return results.Sample{}, false
			}
			j++
		}
		if j >= n-1 || j+1 >= n-1 || b[j+1] != ':' {
			return results.Sample{}, false
		}
		key := b[i+1 : j]
		i = j + 2

		// Value: either a string token (which may contain ',' and must be
		// walked char by char) or a bare token ending at ',' or the final
		// '}'.
		var str, raw []byte
		isString := false
		if i < n-1 && b[i] == '"' {
			isString = true
			j = i + 1
			for j < n-1 && b[j] != '"' {
				if b[j] == '\\' || b[j] < 0x20 || b[j] >= 0x80 {
					return results.Sample{}, false
				}
				j++
			}
			if j >= n-1 {
				return results.Sample{}, false
			}
			str = b[i+1 : j]
			i = j + 1
		} else {
			j = i
			for j < n-1 && b[j] != ',' {
				j++
			}
			raw = b[i:j]
			if len(raw) == 0 {
				return results.Sample{}, false
			}
			i = j
		}

		var bit uint8
		switch string(key) { // compiled to a no-alloc comparison
		case "probe":
			bit = keyProbe
			if isString {
				return results.Sample{}, false
			}
			v, ok := parseJSONInt(raw)
			if !ok {
				return results.Sample{}, false
			}
			s.ProbeID = v
		case "region":
			bit = keyRegion
			if !isString {
				return results.Sample{}, false
			}
			s.Region = d.internString(str)
		case "t":
			bit = keyTime
			if !isString {
				return results.Sample{}, false
			}
			t, ok := parseRFC3339UTC(str)
			if !ok {
				return results.Sample{}, false
			}
			s.Time = t
		case "rtt_ms":
			bit = keyRTT
			if isString || !validJSONNumber(raw) {
				return results.Sample{}, false
			}
			v, err := strconv.ParseFloat(string(raw), 64)
			if err != nil {
				return results.Sample{}, false
			}
			s.RTTms = v
		case "lost":
			bit = keyLost
			if isString {
				return results.Sample{}, false
			}
			switch string(raw) {
			case "true":
				s.Lost = true
			case "false":
				s.Lost = false
			default:
				return results.Sample{}, false
			}
		default:
			return results.Sample{}, false
		}
		if seen&bit != 0 { // duplicate key: json is last-wins, punt
			return results.Sample{}, false
		}
		seen |= bit

		if i == n-1 {
			return s, true
		}
		if b[i] != ',' {
			return results.Sample{}, false
		}
		i++
		if i >= n-1 {
			return results.Sample{}, false
		}
	}
}

// internString returns a string for b, reusing a previously allocated
// copy when the same bytes were seen before. Region addresses repeat
// across millions of samples, so this removes nearly every string
// allocation from the hot path (the map lookup itself does not allocate).
func (d *Decoder) internString(b []byte) string {
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	d.intern[s] = s
	return s
}

// parseJSONInt parses a JSON integer token for an int target the way
// encoding/json would: strict grammar (no leading zeros), and any
// fraction or exponent bails to the fallback since json rejects those
// for integer fields.
func parseJSONInt(b []byte) (int, bool) {
	i := 0
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i >= len(b):
		return 0, false
	case b[i] == '0':
		i++
	case b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return 0, false
	}
	if i != len(b) {
		return 0, false
	}
	v, err := strconv.ParseInt(string(b), 10, 0)
	if err != nil {
		return 0, false
	}
	return int(v), true
}

// validJSONNumber reports whether b matches the JSON number grammar
// exactly. strconv.ParseFloat is more permissive than JSON ("01",
// ".5", "+1", "Inf", hex floats), so the grammar is checked first.
func validJSONNumber(b []byte) bool {
	i := 0
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i >= len(b):
		return false
	case b[i] == '0':
		i++
	case b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	return i == len(b)
}

// parseRFC3339UTC parses "YYYY-MM-DDTHH:MM:SS[.fffffffff]Z" — the only
// shape time.Time.MarshalJSON emits for UTC times. Everything else
// (offsets, lowercase t/z, over-long fractions) bails to the fallback.
// Field ranges are validated explicitly because time.Date normalises
// out-of-range components that time.Parse — and therefore the fallback —
// rejects.
func parseRFC3339UTC(b []byte) (time.Time, bool) {
	n := len(b)
	if n < 20 || b[n-1] != 'Z' {
		return time.Time{}, false
	}
	if b[4] != '-' || b[7] != '-' || b[10] != 'T' || b[13] != ':' || b[16] != ':' {
		return time.Time{}, false
	}
	year, ok := atoiFixed(b[0:4])
	if !ok {
		return time.Time{}, false
	}
	month, ok := atoiFixed(b[5:7])
	if !ok || month < 1 || month > 12 {
		return time.Time{}, false
	}
	day, ok := atoiFixed(b[8:10])
	if !ok || day < 1 || day > daysIn(month, year) {
		return time.Time{}, false
	}
	hour, ok := atoiFixed(b[11:13])
	if !ok || hour > 23 {
		return time.Time{}, false
	}
	minute, ok := atoiFixed(b[14:16])
	if !ok || minute > 59 {
		return time.Time{}, false
	}
	sec, ok := atoiFixed(b[17:19])
	if !ok || sec > 59 { // leap seconds bail: time.Parse rejects :60
		return time.Time{}, false
	}
	nsec := 0
	if n > 20 {
		if b[19] != '.' {
			return time.Time{}, false
		}
		frac := b[20 : n-1]
		if len(frac) == 0 || len(frac) > 9 {
			return time.Time{}, false
		}
		for _, c := range frac {
			if c < '0' || c > '9' {
				return time.Time{}, false
			}
			nsec = nsec*10 + int(c-'0')
		}
		for k := len(frac); k < 9; k++ {
			nsec *= 10
		}
	}
	return time.Date(year, time.Month(month), day, hour, minute, sec, nsec, time.UTC), true
}

// atoiFixed parses an all-digit field.
func atoiFixed(b []byte) (int, bool) {
	v := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	return v, true
}

func daysIn(month, year int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default: // February
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	}
}
