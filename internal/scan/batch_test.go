package scan

import (
	"context"
	"testing"
	"time"

	"repro/internal/colf"
	"repro/internal/results"
)

// countingPass is a tallyPass that also records which dispatch path fed
// it, so tests can assert the batch kernels actually engaged.
type countingPass struct {
	tallyPass
	batched int    // ObserveBlock invocations
	rowed   uint64 // Observe invocations
}

func (p *countingPass) Observe(s results.Sample) error {
	p.rowed++
	return p.tallyPass.Observe(s)
}

func (p *countingPass) ObserveBlock(blk *colf.Block) error {
	p.batched++
	return p.tallyPass.ObserveBlock(blk)
}

func (p *countingPass) Merge(other Pass) error {
	o := other.(*countingPass)
	p.batched += o.batched
	p.rowed += o.rowed
	return p.tallyPass.Merge(&o.tallyPass)
}

// scanCounting runs one scan of path through a countingPass.
func scanCounting(t *testing.T, path string, cfg Config) (*countingPass, Stats) {
	t.Helper()
	var merged *countingPass
	cfg.Path = path
	cfg.NewPasses = func(w int) ([]Pass, error) {
		p := &countingPass{}
		if w == 0 {
			merged = p
		}
		return []Pass{p}, nil
	}
	st, err := File(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return merged, st
}

// TestBinaryBatchEquivalence pins the three binary decode paths to each
// other on the same store: the batch kernels, the RowScan escape hatch,
// and the NoMmap positional-read fallback all produce the same
// order-sensitive checksum for every worker count — and the dispatch
// counters prove each path actually ran.
func TestBinaryBatchEquivalence(t *testing.T) {
	samples := genSamples(20_000)
	path := writeBinary(t, samples, 256)

	for _, workers := range []int{1, 2, 4, 7} {
		batch, _ := scanCounting(t, path, Config{Workers: workers})
		if batch.batched == 0 || batch.rowed != 0 {
			t.Fatalf("workers=%d: batch scan dispatched %d blocks, %d rows; want all-batch",
				workers, batch.batched, batch.rowed)
		}
		row, _ := scanCounting(t, path, Config{Workers: workers, RowScan: true})
		if row.batched != 0 || row.rowed != uint64(len(samples)) {
			t.Fatalf("workers=%d: RowScan dispatched %d blocks, %d rows; want all-row",
				workers, row.batched, row.rowed)
		}
		noMmap, _ := scanCounting(t, path, Config{Workers: workers, NoMmap: true})
		if batch.n != row.n || batch.fold != row.fold {
			t.Errorf("workers=%d: batch (n=%d fold=%#x) != row (n=%d fold=%#x)",
				workers, batch.n, batch.fold, row.n, row.fold)
		}
		if noMmap.n != batch.n || noMmap.fold != batch.fold {
			t.Errorf("workers=%d: NoMmap (n=%d fold=%#x) != mmap (n=%d fold=%#x)",
				workers, noMmap.n, noMmap.fold, batch.n, batch.fold)
		}
	}
}

// TestBinaryBatchFilteredEquivalence repeats the batch-vs-row check
// under a predicate that covers some blocks fully and clips others, so
// both the covered-block kernel dispatch and the partial-cover row
// fallback are exercised.
func TestBinaryBatchFilteredEquivalence(t *testing.T) {
	samples := genSamples(20_000)
	path := writeBinary(t, samples, 256)
	pred := &colf.Predicate{
		Since: samples[0].Time.Add(1 * time.Hour),
		Until: samples[0].Time.Add(4 * time.Hour),
	}
	for _, workers := range []int{1, 2, 4, 7} {
		batch, bst := scanCounting(t, path, Config{Workers: workers, Predicate: pred})
		row, rst := scanCounting(t, path, Config{Workers: workers, Predicate: pred, RowScan: true})
		if batch.n != row.n || batch.fold != row.fold {
			t.Errorf("workers=%d: filtered batch (n=%d fold=%#x) != row (n=%d fold=%#x)",
				workers, batch.n, batch.fold, row.n, row.fold)
		}
		if bst.Samples != rst.Samples {
			t.Errorf("workers=%d: filtered batch saw %d samples, row %d", workers, bst.Samples, rst.Samples)
		}
		if batch.batched == 0 {
			t.Errorf("workers=%d: window clipped every block; widen it so some are covered", workers)
		}
		if batch.rowed == 0 {
			t.Errorf("workers=%d: window covered every kept block; no partial-cover fallback exercised", workers)
		}
	}
}

// zoneTally is an aggregate-only pass: with zone pre-aggregates it
// absorbs whole blocks with zero row decode.
type zoneTally struct {
	rows, delivered uint64
}

func (p *zoneTally) Observe(s results.Sample) error {
	p.rows++
	if !s.Lost {
		p.delivered++
	}
	return nil
}

func (p *zoneTally) CanObserveZone(z colf.Zone) bool { return z.Delivered == 0 || z.HasAgg }

func (p *zoneTally) ObserveZone(z colf.Zone) error {
	p.rows += uint64(z.Rows)
	p.delivered += uint64(z.Delivered)
	return nil
}

func (p *zoneTally) Merge(other Pass) error {
	o := other.(*zoneTally)
	p.rows += o.rows
	p.delivered += o.delivered
	return nil
}

// TestBinaryZoneResolution pins the zone fast path: a scan whose only
// pass is zone-capable resolves every block from its footer
// pre-aggregates — zero rows decoded — and matches the row path's
// tallies exactly.
func TestBinaryZoneResolution(t *testing.T) {
	samples := genSamples(20_000)
	path := writeBinary(t, samples, 256)

	run := func(cfg Config) (*zoneTally, Stats) {
		var merged *zoneTally
		cfg.Path = path
		cfg.NewPasses = func(w int) ([]Pass, error) {
			p := &zoneTally{}
			if w == 0 {
				merged = p
			}
			return []Pass{p}, nil
		}
		st, err := File(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return merged, st
	}

	zoned, zst := run(Config{Workers: 4})
	if zst.BlocksZone != zst.BlocksTotal || zst.RowsScanned != 0 {
		t.Fatalf("zone scan resolved %d/%d blocks from zones, decoded %d rows; want all, 0",
			zst.BlocksZone, zst.BlocksTotal, zst.RowsScanned)
	}
	if zst.Samples != uint64(len(samples)) {
		t.Errorf("zone scan counted %d samples, want %d", zst.Samples, len(samples))
	}
	rowed, rst := run(Config{Workers: 4, RowScan: true})
	if rst.BlocksZone != 0 || rst.RowsScanned != uint64(len(samples)) {
		t.Fatalf("RowScan resolved %d blocks from zones, decoded %d rows; want 0, %d",
			rst.BlocksZone, rst.RowsScanned, len(samples))
	}
	if *zoned != *rowed {
		t.Errorf("zone tallies %+v != row tallies %+v", *zoned, *rowed)
	}
}
