package scan

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/colf"
)

// benchRows is sized so the JSONL encoding is ~20 MB: big enough that
// decode throughput dominates setup, small enough for the 1x bench
// smoke in scripts/check.sh.
const benchRows = 200_000

// benchScan measures File over one samples file, reporting decode
// throughput in file MB/s plus two sample rates: samples/s counts
// predicate matches (the pass-visible rate), rows/s counts every row
// decoded and examined. They coincide on unfiltered scans; on filtered
// ones samples/s measures selectivity, not decode speed — a filtered
// JSONL scan still decodes every row, and on binary stores
// zone-skipped blocks appear in neither rate.
func benchScan(b *testing.B, path string, pred *colf.Predicate) {
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	var samples, rows uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := File(context.Background(), Config{
			Path:      path,
			Workers:   4,
			Predicate: pred,
			NewPasses: func(int) ([]Pass, error) { return []Pass{&tallyPass{}}, nil },
		})
		if err != nil {
			b.Fatal(err)
		}
		samples = st.Samples
		rows = st.RowsScanned
	}
	b.StopTimer()
	b.ReportMetric(float64(samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkScanJSONL is the baseline: a full 4-worker scan of the
// line-oriented encoding.
func BenchmarkScanJSONL(b *testing.B) {
	path := writeJSONL(b, genSamples(benchRows))
	benchScan(b, path, nil)
}

// BenchmarkScanBinary scans the same samples in colf form (default
// block size). The acceptance bar is >= 2x BenchmarkScanJSONL in
// samples/s.
func BenchmarkScanBinary(b *testing.B) {
	path := writeBinary(b, genSamples(benchRows), colf.DefaultBlockRows)
	benchScan(b, path, nil)
}

// BenchmarkScanBinaryFiltered scans a ~30-minute window out of the
// ~55-hour stream: zone maps skip all but one or two blocks.
func BenchmarkScanBinaryFiltered(b *testing.B) {
	samples := genSamples(benchRows)
	path := writeBinary(b, samples, colf.DefaultBlockRows)
	benchScan(b, path, &colf.Predicate{
		Since: samples[0].Time.Add(24 * time.Hour),
		Until: samples[0].Time.Add(24*time.Hour + 30*time.Minute),
	})
}

// BenchmarkScanJSONLFiltered is the pushdown baseline: the same window
// on the line encoding still decodes every byte, so rows/s is the
// honest throughput here — samples/s only counts the ~0.5% of rows the
// window keeps.
func BenchmarkScanJSONLFiltered(b *testing.B) {
	samples := genSamples(benchRows)
	path := writeJSONL(b, samples)
	benchScan(b, path, &colf.Predicate{
		Since: samples[0].Time.Add(24 * time.Hour),
		Until: samples[0].Time.Add(24*time.Hour + 30*time.Minute),
	})
}
