package scan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
	"unsafe"

	"repro/internal/results"
)

// checkAgainstStdlib asserts the decoder contract on one line: Decode
// must succeed exactly when json.Unmarshal succeeds, and on success the
// samples must be identical (field-by-field, with time compared by both
// Equal and re-marshalled bytes so location differences surface).
func checkAgainstStdlib(t *testing.T, line []byte) {
	t.Helper()
	d := NewDecoder()
	got, gotErr := d.Decode(line)
	var want results.Sample
	wantErr := json.Unmarshal(line, &want)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("line %q: Decode err = %v, json err = %v", line, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("line %q: Decode err %q != json err %q", line, gotErr, wantErr)
		}
		return
	}
	if got.ProbeID != want.ProbeID || got.Region != want.Region ||
		got.RTTms != want.RTTms || got.Lost != want.Lost || !got.Time.Equal(want.Time) {
		t.Fatalf("line %q: Decode = %+v, json = %+v", line, got, want)
	}
	gb, err1 := json.Marshal(got)
	wb, err2 := json.Marshal(want)
	if err1 != nil || err2 != nil || !bytes.Equal(gb, wb) {
		t.Fatalf("line %q: re-marshal mismatch %q vs %q (%v, %v)", line, gb, wb, err1, err2)
	}
}

func TestDecoderFastPath(t *testing.T) {
	lines := []string{
		`{"probe":42,"region":"aws/us-east-1","t":"2026-01-02T03:04:05Z","rtt_ms":12.5}`,
		`{"probe":42,"region":"aws/us-east-1","t":"2026-01-02T03:04:05.123456789Z","rtt_ms":12.5}`,
		`{"probe":1,"region":"gcp/x","t":"2026-02-28T23:59:59Z","rtt_ms":0.001,"lost":true}`,
		`{"probe":1,"region":"gcp/x","t":"2024-02-29T00:00:00Z","rtt_ms":1e2}`,
		`{"probe":1,"region":"gcp/x","t":"2026-06-30T12:00:00.5Z","rtt_ms":1.5e-2}`,
		`{}`,
		`{"lost":false,"rtt_ms":3,"t":"2026-01-01T00:00:00Z","region":"r","probe":7}`, // any key order
		`{"probe":-3}`, // json accepts negatives; Validate rejects later
		`{"probe":0,"rtt_ms":-1.25}`,
	}
	for _, l := range lines {
		d := NewDecoder()
		if _, ok := d.fast([]byte(l)); !ok {
			t.Errorf("line %q: expected fast path", l)
		}
		checkAgainstStdlib(t, []byte(l))
	}
}

func TestDecoderFallbackCases(t *testing.T) {
	// Every line here must bail out of the fast path (so stdlib semantics
	// apply by construction) — malformed lines, unknown fields, escapes,
	// odd numbers and timestamps.
	lines := []string{
		``,
		`{`,
		`null`,
		`42`,
		`[1,2]`,
		`{"probe":1,}`,
		`{"probe" :1}`,                            // whitespace
		`{"probe": 1}`,                            // whitespace
		`{"probe":1,"region":"a\/b"}`,             // escaped string
		`{"region":"tab\there"}`,                  // escaped string
		`{"region":"\u0041ws"}`,                   // unicode escape
		`{"region":"caf` + "\xc3\xa9" + `"}`,      // non-ASCII (valid UTF-8)
		`{"region":"` + "\xff\xfe" + `"}`,         // invalid UTF-8: json coerces to U+FFFD
		`{"probe":01}`,                            // leading zero
		`{"probe":1.5}`,                           // float into int field
		`{"probe":1e2}`,                           // exponent into int field
		`{"rtt_ms":.5}`,                           // bare fraction
		`{"rtt_ms":+1}`,                           // leading plus
		`{"rtt_ms":1.}`,                           // trailing dot
		`{"rtt_ms":0x10}`,                         // hex
		`{"rtt_ms":Infinity}`,                     // not JSON
		`{"rtt_ms":NaN}`,                          // not JSON
		`{"rtt_ms":1e999}`,                        // float64 overflow
		`{"probe":99999999999999999999}`,          // int overflow
		`{"lost":1}`,                              // number into bool
		`{"lost":null}`,                           // null is a no-op in json
		`{"rtt_ms":null}`,                         // null is a no-op in json
		`{"extra":1}`,                             // unknown field (json ignores)
		`{"probe":1,"probe":2}`,                   // duplicate key (json last-wins)
		`{"t":"2026-01-02T03:04:05+02:00"}`,       // zone offset
		`{"t":"2026-01-02t03:04:05Z"}`,            // lowercase t
		`{"t":"2026-01-02T03:04:05z"}`,            // lowercase z
		`{"t":"2026-13-01T00:00:00Z"}`,            // month out of range
		`{"t":"2026-02-29T00:00:00Z"}`,            // non-leap Feb 29
		`{"t":"2026-04-31T00:00:00Z"}`,            // April 31
		`{"t":"2026-01-00T00:00:00Z"}`,            // day zero
		`{"t":"2026-01-01T24:00:00Z"}`,            // hour 24
		`{"t":"2026-01-01T00:60:00Z"}`,            // minute 60
		`{"t":"2026-06-30T23:59:60Z"}`,            // leap second
		`{"t":"2026-01-01T00:00:00.0000000001Z"}`, // >9 fraction digits
		`{"t":"2026-01-01T00:00:00."}`,            // truncated
		`{"t":"not a time"}`,
		`{"t":1234567890}`, // number into time
		`{"region":7}`,     // number into string
		`{"probe":"7"}`,    // string into int
		`{"probe":1}trailing`,
		`{"":1}`,
	}
	for _, l := range lines {
		d := NewDecoder()
		if _, ok := d.fast([]byte(l)); ok {
			t.Errorf("line %q: fast path accepted, want fallback", l)
		}
		checkAgainstStdlib(t, []byte(l))
	}
}

func TestDecoderCountsFallbacks(t *testing.T) {
	d := NewDecoder()
	if _, err := d.Decode([]byte(`{"probe":1,"region":"r","t":"2026-01-01T00:00:00Z","rtt_ms":5}`)); err != nil {
		t.Fatal(err)
	}
	if d.Fallbacks != 0 {
		t.Errorf("fast line counted as fallback")
	}
	if _, err := d.Decode([]byte(`{"probe": 1}`)); err != nil {
		t.Fatal(err)
	}
	if d.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", d.Fallbacks)
	}
}

func TestDecoderInternsRegions(t *testing.T) {
	d := NewDecoder()
	a, err := d.Decode([]byte(`{"region":"aws/eu-west-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Decode([]byte(`{"region":"aws/eu-west-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	// Same backing pointer, not just equal contents.
	if unsafeStringData(a.Region) != unsafeStringData(b.Region) {
		t.Error("repeated region strings were not interned")
	}
}

func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

// TestDecoderDifferential is the fuzz-style contract check: seeded
// random lines — valid samples, mutations, and structured garbage — all
// decode identically to encoding/json.
func TestDecoderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	regions := []string{"aws/us-east-1", "gcp/europe-west4", "azure/eastus", "x", "a/b/c", "with space", `q"uote`}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	randomLine := func() []byte {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // well-formed sample, via the real writer encoding
			s := results.Sample{
				ProbeID: rng.Intn(2000) - 10,
				Region:  regions[rng.Intn(len(regions))],
				Time:    base.Add(time.Duration(rng.Int63n(int64(90 * 24 * time.Hour)))),
				RTTms:   rng.Float64() * 500,
				Lost:    rng.Intn(10) == 0,
			}
			if rng.Intn(5) == 0 {
				s.Time = s.Time.Add(time.Duration(rng.Intn(1e9))) // fractional seconds
			}
			b, err := json.Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			return b
		case 6: // mutate one byte of a valid line
			b, err := json.Marshal(results.Sample{ProbeID: 1, Region: "r", Time: base, RTTms: 1})
			if err != nil {
				t.Fatal(err)
			}
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
			return b
		case 7: // random key soup
			keys := []string{"probe", "region", "t", "rtt_ms", "lost", "probe", "bogus"}
			vals := []string{`1`, `"r"`, `"2026-01-01T00:00:00Z"`, `3.5`, `true`, `null`, `[1]`, `{"x":2}`, `1e4`, `-0`, `0.5`}
			var sb strings.Builder
			sb.WriteByte('{')
			n := rng.Intn(5)
			for i := 0; i < n; i++ {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%q:%s", keys[rng.Intn(len(keys))], vals[rng.Intn(len(vals))])
			}
			sb.WriteByte('}')
			return []byte(sb.String())
		case 8: // odd timestamps
			ts := []string{
				"2026-01-01T00:00:00Z", "2026-01-01T00:00:00+00:00", "2026-12-31T23:59:59.999999999Z",
				"2026-02-29T00:00:00Z", "2000-02-29T12:00:00Z", "1999-01-01T00:00:00Z",
				"2026-1-01T00:00:00Z", "2026-01-01 00:00:00Z", "2026-01-01T00:00:00",
			}
			return []byte(fmt.Sprintf(`{"t":%q}`, ts[rng.Intn(len(ts))]))
		default: // odd numbers
			ns := []string{"0", "-0", "00", "1.0", "1.", ".1", "1e5", "1E5", "1e+5", "1e-5", "1e", "--1", "9007199254740993", "3.141592653589793"}
			key := []string{"probe", "rtt_ms"}[rng.Intn(2)]
			return []byte(fmt.Sprintf(`{%q:%s}`, key, ns[rng.Intn(len(ns))]))
		}
	}
	for i := 0; i < 20000; i++ {
		checkAgainstStdlib(t, randomLine())
	}
}

func BenchmarkSampleDecode(b *testing.B) {
	line := []byte(`{"probe":1377,"region":"aws/eu-central-1","t":"2026-03-14T15:09:26.535897932Z","rtt_ms":26.535897}`)
	b.Run("fast", func(b *testing.B) {
		d := NewDecoder()
		b.ReportAllocs()
		b.SetBytes(int64(len(line)))
		for i := 0; i < b.N; i++ {
			if _, err := d.Decode(line); err != nil {
				b.Fatal(err)
			}
		}
		if d.Fallbacks != 0 {
			b.Fatalf("benchmark line fell back %d times", d.Fallbacks)
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(line)))
		for i := 0; i < b.N; i++ {
			var s results.Sample
			if err := json.Unmarshal(line, &s); err != nil {
				b.Fatal(err)
			}
		}
	})
}
