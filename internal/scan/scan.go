// Package scan is the parallel dataset scanner. It sniffs the samples
// file's encoding from its leading bytes and shards accordingly: JSONL
// stores split into line-aligned byte ranges decoded by a
// low-allocation fast-path decoder; binary (colf) stores split by
// block index, with zone-map predicate pushdown skipping blocks that
// cannot match. Either way each shard runs on its own worker feeding
// per-worker partial aggregates (Passes), and the partials merge in
// shard order. Because shards are contiguous and merged in file order,
// a scan produces the same report bytes for any worker count — the same
// determinism guarantee internal/engine gives the generation side.
package scan

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/colf"
	"repro/internal/obs"
	"repro/internal/results"
)

// Pass is one streaming aggregate: it observes every sample of a shard
// and can fold another worker's partial state into itself. Merge is
// always called with partials from later shards, in shard order, so an
// order-sensitive accumulation (a float sum, a first-wins minimum)
// reconstructs the sequential file-order fold exactly.
type Pass interface {
	Observe(s results.Sample) error
	// Merge folds other — the same Pass type built by a later worker —
	// into the receiver.
	Merge(other Pass) error
}

// BlockPass is a Pass with a columnar fast path. When every row of a
// block provably matches the predicate (Predicate.CoversZone) and the
// block passes the row-validity sweep, the scanner hands the decoded
// column arrays to ObserveBlock instead of materializing one
// results.Sample per row. ObserveBlock must fold exactly the state the
// equivalent row-order Observe calls would — the scanner's batch/row
// equivalence is pinned by tests and the figure byte-identity checks.
type BlockPass interface {
	Pass
	// Columns reports the optional columns ObserveBlock reads. Probe,
	// RTT, loss and the region dictionary (Dict/RegionID) are always
	// decoded; ColTime and ColRegionStrings are decoded only when some
	// pass asks for them, which is a major perf lever for passes that
	// ignore timestamps.
	Columns() colf.ColumnSet
	// ObserveBlock observes every row of blk in row order.
	ObserveBlock(blk *colf.Block) error
}

// ZonePass is a Pass that can absorb a whole block from its zone
// pre-aggregates alone, with zero row decode. The scanner uses it only
// when every pass of the scan is zone-capable for the block and the
// predicate covers the zone; such blocks skip decoding entirely, which
// also skips per-row validation — ZonePass is therefore opt-in for
// aggregate-only consumers that accept zone-level granularity.
type ZonePass interface {
	Pass
	// CanObserveZone reports whether z carries enough pre-aggregates for
	// this pass (e.g. v1 zones lack the delivered-RTT sum).
	CanObserveZone(z colf.Zone) bool
	// ObserveZone folds the whole block summarized by z.
	ObserveZone(z colf.Zone) error
}

// Config describes one scan.
type Config struct {
	// Path is the samples file to scan — JSONL or binary colf; the
	// scanner sniffs the encoding from the file's leading bytes.
	Path string
	// Workers is the shard/worker count; values < 1 use GOMAXPROCS.
	Workers int
	// NewPasses builds the pass set for one worker. It is called
	// sequentially with worker = 0..n-1 before any decoding starts; the
	// caller keeps its own reference to the worker-0 passes, which
	// receive every merge and hold the final state when File returns.
	// All workers must produce the same pass types in the same order.
	NewPasses func(worker int) ([]Pass, error)
	// Predicate, when non-empty, restricts the scan to matching samples:
	// rows are filtered exactly on both formats, and binary scans
	// additionally skip whole blocks whose zone maps cannot match —
	// the pushdown that makes windowed queries cheap.
	Predicate *colf.Predicate
	// RowScan forces the legacy per-row path on binary stores: every
	// kept block decodes all columns and feeds passes one
	// results.Sample at a time, ignoring BlockPass/ZonePass fast paths.
	// The batch path is byte-equivalent; this switch exists to prove it
	// (tests, the check.sh equivalence smoke, figures -rowscan).
	RowScan bool
	// NoMmap disables memory-mapping binary stores, forcing the
	// positional-read fallback that platforms without mmap use.
	NoMmap bool
	// Resume, when set, skips the store prefix a snapshot already
	// covers: only bytes (JSONL) or blocks (binary) past the boundary
	// are sharded and decoded. The boundary must be line- or
	// block-aligned; a bogus one fails the scan rather than decoding
	// garbage. The caller is responsible for proving the prefix still
	// matches the snapshotted state (see internal/snap).
	Resume *Resume
	// Metrics, when set, receives scan_* instruments.
	Metrics *Metrics
	// Log, when set, receives a scan-completion event with the stats.
	Log *obs.Logger
}

// Resume names the covered boundary a scan may skip to: the byte
// offset, and for binary stores the block count before it.
type Resume struct {
	Bytes  int64
	Blocks int
}

// Stats summarises one completed scan.
type Stats struct {
	Workers int    // shards actually scanned
	Samples uint64 // samples decoded and observed
	// RowsScanned counts rows decoded and examined, before predicate
	// row-filtering (Samples counts only matches). Zone-resolved blocks
	// contribute to Samples but not RowsScanned — their rows were never
	// decoded.
	RowsScanned uint64
	Bytes       int64           // file bytes covered
	Fallbacks   uint64          // lines decoded through encoding/json
	Duration    time.Duration   // wall-clock scan time
	Busy        []time.Duration // per-worker busy time, shard order

	// Resume accounting; zero on cold scans.
	PrefixBlocks int   // blocks before the resume boundary (binary)
	PrefixBytes  int64 // bytes before the resume boundary
	// DataEnd is where sample data ends: the end of the last block on
	// binary stores (excluding any trailing index), the file size on
	// JSONL. A snapshot taken from this scan covers [0, DataEnd).
	DataEnd int64

	// Binary block accounting; zero on JSONL scans except BytesDecoded,
	// which then equals the bytes scanned past the resume boundary.
	Binary        bool  // scanned a colf store
	BlocksTotal   int   // blocks in the file, including the resumed prefix
	BlocksRead    int   // blocks decoded
	BlocksSkipped int   // blocks skipped via zone maps
	BlocksZone    int   // blocks resolved from zone pre-aggregates, no decode
	BytesDecoded  int64 // encoded bytes actually decoded
}

// SamplesPerSec returns the scan's decode throughput.
func (st Stats) SamplesPerSec() float64 {
	if st.Duration <= 0 {
		return 0
	}
	return float64(st.Samples) / st.Duration.Seconds()
}

// MBPerSec returns the scan's byte throughput in MB/s.
func (st Stats) MBPerSec() float64 {
	if st.Duration <= 0 {
		return 0
	}
	return float64(st.Bytes) / 1e6 / st.Duration.Seconds()
}

// Utilization returns the mean fraction of the scan wall-clock each
// worker spent busy, in [0, 1].
func (st Stats) Utilization() float64 {
	if st.Duration <= 0 || st.Workers == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range st.Busy {
		busy += b
	}
	return busy.Seconds() / (st.Duration.Seconds() * float64(st.Workers))
}

// File scans the samples file at cfg.Path through the configured pass
// set. On success the worker-0 passes (retained by the caller via
// NewPasses) hold the fully merged aggregates. Line handling matches
// results.Reader: empty lines are skipped, each sample is validated,
// and lines beyond results.MaxLineBytes fail the scan.
func File(ctx context.Context, cfg Config) (Stats, error) {
	if cfg.Path == "" || cfg.NewPasses == nil {
		return Stats{}, fmt.Errorf("scan: missing Path or NewPasses")
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	span := obs.From(ctx).Child("scan")
	defer span.End()
	f, err := os.Open(cfg.Path)
	if err != nil {
		return Stats{}, err
	}
	defer f.Close()
	var resumeBytes int64
	var resumeBlocks int
	if cfg.Resume != nil {
		resumeBytes, resumeBlocks = cfg.Resume.Bytes, cfg.Resume.Blocks
	}
	// Sniff the encoding: a colf magic routes to the block scanner,
	// anything else is treated as JSONL.
	var hdr [colf.HeaderSize]byte
	if n, _ := f.ReadAt(hdr[:], 0); colf.Sniff(hdr[:n]) {
		st, err := f.Stat()
		if err != nil {
			return Stats{}, err
		}
		size := st.Size()
		var blocks []colf.BlockInfo
		if resumeBytes > 0 {
			// Resume: locate only the blocks past the covered boundary.
			blocks, err = colf.DeltaBlocks(f, size, resumeBytes)
			if err != nil {
				return Stats{}, fmt.Errorf("scan: resume at offset %d: %w", resumeBytes, err)
			}
		} else {
			rd, err := colf.NewReader(f, size)
			if err != nil {
				return Stats{}, err
			}
			blocks = rd.Blocks()
			resumeBlocks = 0
		}
		// Decode straight out of the page cache when the platform maps
		// files; any mmap failure silently keeps the positional-read
		// path, which is what platforms without mmap use.
		src := io.ReaderAt(f)
		if !cfg.NoMmap {
			if m, merr := colf.OpenMapping(f, size); merr == nil {
				defer m.Close()
				src = m
			}
		}
		bst, berr := scanBinary(ctx, cfg, src, size, workers, span, blocks, resumeBlocks, resumeBytes)
		if berr == nil {
			cfg.Log.Debug("scan complete", "format", "binary",
				"workers", bst.Workers, "samples", bst.Samples,
				"blocks_read", bst.BlocksRead, "blocks_skipped", bst.BlocksSkipped,
				"blocks_zone", bst.BlocksZone,
				"blocks_total", bst.BlocksTotal, "duration_ms", bst.Duration.Milliseconds())
		}
		return bst, berr
	}
	shards, size, err := shardFile(f, workers, resumeBytes)
	if err != nil {
		return Stats{}, err
	}
	if len(shards) == 0 {
		// Nothing past the boundary (empty file, or a resume that already
		// covers everything): build the worker-0 passes so the caller can
		// report (typically an empty-dataset error) from a consistent state.
		if _, err := cfg.NewPasses(0); err != nil {
			return Stats{}, err
		}
		return Stats{Workers: 0, Bytes: size, PrefixBytes: resumeBytes, DataEnd: size}, nil
	}

	passes := make([][]Pass, len(shards))
	for w := range shards {
		ps, err := cfg.NewPasses(w)
		if err != nil {
			return Stats{}, err
		}
		if w > 0 && len(ps) != len(passes[0]) {
			return Stats{}, fmt.Errorf("scan: worker %d built %d passes, worker 0 built %d", w, len(ps), len(passes[0]))
		}
		passes[w] = ps
	}

	start := time.Now()
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg        sync.WaitGroup
		errs      = make([]error, len(shards))
		samples   = make([]uint64, len(shards))
		rows      = make([]uint64, len(shards))
		fallbacks = make([]uint64, len(shards))
		busy      = make([]time.Duration, len(shards))
	)
	for w, sh := range shards {
		wg.Add(1)
		go func(w int, sh Shard) {
			defer wg.Done()
			t0 := time.Now()
			samples[w], rows[w], fallbacks[w], errs[w] = scanShard(scanCtx, f, sh, cfg.Predicate, passes[w])
			busy[w] = time.Since(t0)
			if errs[w] != nil {
				cancel() // fail fast: stop the other shards
			}
		}(w, sh)
	}
	wg.Wait()

	st := Stats{
		Workers: len(shards), Bytes: size, BytesDecoded: size - resumeBytes,
		PrefixBytes: resumeBytes, DataEnd: size, Busy: busy,
	}
	for w := range shards {
		st.Samples += samples[w]
		st.RowsScanned += rows[w]
		st.Fallbacks += fallbacks[w]
	}
	// First error in shard (= file) order, so the reported failure is
	// deterministic even when several shards fail.
	for w, err := range errs {
		if err != nil {
			st.Duration = time.Since(start)
			return st, fmt.Errorf("scan: shard %d (offset %d): %w", w, shards[w].Off, err)
		}
	}

	// Merge partials into the worker-0 passes in shard order.
	for w := 1; w < len(shards); w++ {
		for i, p := range passes[0] {
			if err := p.Merge(passes[w][i]); err != nil {
				st.Duration = time.Since(start)
				return st, fmt.Errorf("scan: merging shard %d pass %d: %w", w, i, err)
			}
		}
	}
	st.Duration = time.Since(start)
	span.SetAttr("format", "jsonl")
	span.SetAttr("workers", st.Workers)
	span.SetAttr("samples", st.Samples)
	span.SetAttr("bytes", st.Bytes)
	span.SetAttr("fallbacks", st.Fallbacks)
	span.SetAttr("samples_per_sec", st.SamplesPerSec())
	cfg.Metrics.observe(st)
	cfg.Log.Debug("scan complete", "format", "jsonl",
		"workers", st.Workers, "samples", st.Samples, "bytes", st.Bytes,
		"fallbacks", st.Fallbacks, "duration_ms", st.Duration.Milliseconds())
	return st, nil
}

// scanShard decodes one byte range and feeds every predicate-matching
// sample to ps. rows counts every decoded sample, matched or not.
func scanShard(ctx context.Context, f *os.File, sh Shard, pred *colf.Predicate, ps []Pass) (samples, rows, fallbacks uint64, err error) {
	sc := bufio.NewScanner(io.NewSectionReader(f, sh.Off, sh.Len))
	sc.Buffer(make([]byte, 0, 64*1024), results.MaxLineBytes)
	dec := NewDecoder()
	var line uint64
	for sc.Scan() {
		line++
		if line%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return samples, rows, dec.Fallbacks, err
			}
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		s, err := dec.Decode(raw)
		if err != nil {
			return samples, rows, dec.Fallbacks, err
		}
		if err := s.Validate(); err != nil {
			return samples, rows, dec.Fallbacks, err
		}
		rows++
		if !pred.Empty() && !pred.MatchRow(s.ProbeID, s.Time.UnixNano(), s.Region) {
			continue
		}
		for _, p := range ps {
			if err := p.Observe(s); err != nil {
				return samples, rows, dec.Fallbacks, err
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return samples, rows, dec.Fallbacks, fmt.Errorf("line %d exceeds %d bytes: %w", line+1, results.MaxLineBytes, err)
		}
		return samples, rows, dec.Fallbacks, err
	}
	return samples, rows, dec.Fallbacks, nil
}
