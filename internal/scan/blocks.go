package scan

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"repro/internal/colf"
	"repro/internal/obs"
)

// Blocks scans an already-located colf block list against an open data
// source, for callers that hold a long-lived handle or mapping and walk
// the file themselves — the serving layer's incremental refresh, which
// locates new blocks with colf.ScanBlocksAvailable and must not reopen
// and re-walk the store on every advance. The semantics match the
// binary path of File exactly (same sharding, pushdown, merge order and
// stats); cfg.Path, cfg.NoMmap and cfg.Resume are ignored — the caller
// already resolved them into r, blocks and prefixBlocks/prefixBytes
// (the blocks and bytes before blocks[0] that an earlier scan covered).
func Blocks(ctx context.Context, cfg Config, r io.ReaderAt, size int64, blocks []colf.BlockInfo, prefixBlocks int, prefixBytes int64) (Stats, error) {
	if cfg.NewPasses == nil {
		return Stats{}, fmt.Errorf("scan: missing NewPasses")
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	span := obs.From(ctx).Child("scan")
	defer span.End()
	st, err := scanBinary(ctx, cfg, r, size, workers, span, blocks, prefixBlocks, prefixBytes)
	if err == nil {
		cfg.Log.Debug("scan complete", "format", "binary",
			"workers", st.Workers, "samples", st.Samples,
			"blocks_read", st.BlocksRead, "blocks_skipped", st.BlocksSkipped,
			"blocks_zone", st.BlocksZone,
			"blocks_total", st.BlocksTotal, "duration_ms", st.Duration.Milliseconds())
	}
	return st, err
}
