package scan

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// Shard is one contiguous byte range of the samples file, aligned so it
// begins at the start of a line and ends immediately after a newline
// (or at EOF). Shards are produced in file order and cover the file
// exactly, so concatenating them in shard order reconstructs the byte
// stream a sequential reader would see — the property the deterministic
// merge builds on.
type Shard struct {
	Off int64
	Len int64
}

// shardFile cuts the byte range [from, EOF) into at most n line-aligned
// shards of roughly equal size, returning them in file order along with
// the file size. from must be a line start (0, or a boundary a previous
// scan reported); a cold scan passes 0. Fewer than n shards come back
// when alignment collapses neighbouring cuts (tiny files, very long
// lines); an empty range yields no shards.
func shardFile(f *os.File, n int, from int64) ([]Shard, int64, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := st.Size()
	if from < 0 || from > size {
		return nil, 0, fmt.Errorf("scan: resume offset %d outside file of %d bytes", from, size)
	}
	if size == from {
		return nil, size, nil
	}
	if n < 1 {
		n = 1
	}
	cuts := make([]int64, n+1)
	cuts[0] = from
	cuts[n] = size
	for i := 1; i < n; i++ {
		target := from + (size-from)*int64(i)/int64(n)
		if target < cuts[i-1] {
			target = cuts[i-1]
		}
		aligned, err := alignForward(f, target, size)
		if err != nil {
			return nil, 0, err
		}
		cuts[i] = aligned
	}
	shards := make([]Shard, 0, n)
	for i := 0; i < n; i++ {
		if cuts[i+1] > cuts[i] {
			shards = append(shards, Shard{Off: cuts[i], Len: cuts[i+1] - cuts[i]})
		}
	}
	return shards, size, nil
}

// alignForward returns the first line-start position at or after target:
// one byte past the first '\n' found at index >= target-1. Starting the
// search at target-1 keeps a target that already sits on a line start
// where it is instead of skipping the following line. If no newline
// remains, the file's tail is one unterminated line and the boundary is
// EOF.
func alignForward(f *os.File, target, size int64) (int64, error) {
	if target <= 0 {
		return 0, nil
	}
	pos := target - 1
	buf := make([]byte, 64*1024)
	for pos < size {
		want := int64(len(buf))
		if rem := size - pos; rem < want {
			want = rem
		}
		n, err := f.ReadAt(buf[:want], pos)
		if idx := bytes.IndexByte(buf[:n], '\n'); idx >= 0 {
			return pos + int64(idx) + 1, nil
		}
		pos += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	return size, nil
}
