// Package bandwidth models the second axis of the feasibility zone: the
// backhaul load an application deployment places on the network, with and
// without edge aggregation (§3 Q2/Q3, §5). It quantifies the paper's
// "1 GB/entity" threshold: the per-entity data volume at which a
// metro-scale deployment saturates its backhaul unless the edge
// pre-processes the data.
package bandwidth

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/apps"
)

// GBPerDayToMbps converts a daily data volume into a sustained rate:
// 1 GB/day = 8e3 Mbit / 86400 s.
const GBPerDayToMbps = 8.0 * 1000 / 86400

// Deployment is one application rollout in a metro area.
type Deployment struct {
	// Entities is the number of data-producing units (cameras, cars,
	// sensors) behind one backhaul aggregation point.
	Entities int
	// GBPerEntityDay is each entity's daily data production.
	GBPerEntityDay float64
	// Reduction is the fraction of data an edge node removes before it
	// crosses the backhaul (aggregation, filtering, inference); 0 means the
	// edge forwards everything, 0.95 means only 5% continues upstream.
	Reduction float64
	// BackhaulMbps is the aggregation point's upstream capacity.
	BackhaulMbps float64
}

// Validate checks the deployment parameters.
func (d Deployment) Validate() error {
	if d.Entities <= 0 {
		return fmt.Errorf("bandwidth: non-positive entity count %d", d.Entities)
	}
	if d.GBPerEntityDay < 0 {
		return fmt.Errorf("bandwidth: negative data volume %v", d.GBPerEntityDay)
	}
	if d.Reduction < 0 || d.Reduction > 1 {
		return fmt.Errorf("bandwidth: reduction %v out of [0,1]", d.Reduction)
	}
	if d.BackhaulMbps <= 0 {
		return fmt.Errorf("bandwidth: non-positive backhaul %v", d.BackhaulMbps)
	}
	return nil
}

// DemandMbps is the sustained upstream rate without an edge.
func (d Deployment) DemandMbps() float64 {
	return float64(d.Entities) * d.GBPerEntityDay * GBPerDayToMbps
}

// EdgeDemandMbps is the rate after edge aggregation.
func (d Deployment) EdgeDemandMbps() float64 {
	return d.DemandMbps() * (1 - d.Reduction)
}

// Utilization returns backhaul utilization (may exceed 1 = congestion).
func (d Deployment) Utilization(withEdge bool) float64 {
	demand := d.DemandMbps()
	if withEdge {
		demand = d.EdgeDemandMbps()
	}
	return demand / d.BackhaulMbps
}

// SavedMbps is the backhaul bandwidth the edge saves.
func (d Deployment) SavedMbps() float64 {
	return d.DemandMbps() - d.EdgeDemandMbps()
}

// Metro is the reference aggregation point used to justify the zone
// threshold: ~100k entities behind a 10 Gbps metro backhaul.
func Metro() Deployment {
	return Deployment{Entities: 100_000, BackhaulMbps: 10_000}
}

// DefaultMetroEntities estimates how many entities of each Figure 2
// application share one metro aggregation point: thousands of traffic
// cameras, tens of thousands of vehicles, hundreds of thousands of homes.
// Unknown applications fall back to the Metro reference count.
func DefaultMetroEntities() map[string]int {
	return map[string]int{
		"Traffic camera monitoring": 2_000,
		"Autonomous vehicles":       50_000,
		"AR/VR":                     20_000,
		"360-degree streaming":      20_000,
		"Cloud gaming":              50_000,
		"Industrial robots":         10_000,
		"Remote surgery":            1_000,
		"Smart city":                2_000,
		"Video streaming analytics": 5_000,
		"Connected factories":       5_000,
		"Smart home":                100_000,
		"Wearables":                 200_000,
		"Health monitoring":         200_000,
		"Voice assistants":          200_000,
		"Weather monitoring":        50_000,
		"Smart parking":             50_000,
	}
}

// BreakEvenGBPerEntity returns the per-entity daily volume at which the
// raw (edge-less) demand reaches the target utilization of the backhaul.
// With the Metro reference and a 100% target this lands near the paper's
// 1 GB/entity threshold.
func BreakEvenGBPerEntity(d Deployment, targetUtilization float64) (float64, error) {
	probe := Deployment{Entities: d.Entities, GBPerEntityDay: 1, BackhaulMbps: d.BackhaulMbps}
	if err := probe.Validate(); err != nil {
		return 0, err
	}
	if targetUtilization <= 0 {
		return 0, errors.New("bandwidth: non-positive target utilization")
	}
	return targetUtilization * d.BackhaulMbps / (float64(d.Entities) * GBPerDayToMbps), nil
}

// AppRow is one application's bandwidth verdict.
type AppRow struct {
	App            string  `json:"app"`
	Entities       int     `json:"entities"`          // metro-scale entity count
	GBPerEntityDay float64 `json:"gb_per_entity_day"` // upper requirement bound
	RawUtilization float64 `json:"raw_utilization"`   // without edge, on the reference metro
	EdgeHelps      bool    `json:"edge_helps"`        // edge aggregation averts congestion
}

// Report evaluates the Figure 2 catalog on a reference deployment.
type Report struct {
	Reference Deployment `json:"reference"`
	Reduction float64    `json:"reduction"`
	Rows      []AppRow   `json:"rows"` // sorted by raw utilization, descending
}

// Justify evaluates every catalog application on the reference metro
// deployment with the given edge reduction factor: edge bandwidth
// aggregation "helps" when the raw demand congests the backhaul
// (utilization > 1) and the edge brings it back under.
func Justify(catalog *apps.Catalog, ref Deployment, reduction float64) (*Report, error) {
	if catalog == nil {
		return nil, errors.New("bandwidth: nil catalog")
	}
	if reduction < 0 || reduction > 1 {
		return nil, fmt.Errorf("bandwidth: reduction %v out of [0,1]", reduction)
	}
	entities := DefaultMetroEntities()
	rep := &Report{Reference: ref, Reduction: reduction}
	for _, a := range catalog.All() {
		d := ref
		if n, ok := entities[a.Name]; ok {
			d.Entities = n
		}
		d.GBPerEntityDay = a.DataGBPerEntity.Hi
		d.Reduction = reduction
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("bandwidth: %s: %w", a.Name, err)
		}
		raw := d.Utilization(false)
		rep.Rows = append(rep.Rows, AppRow{
			App:            a.Name,
			Entities:       d.Entities,
			GBPerEntityDay: a.DataGBPerEntity.Hi,
			RawUtilization: raw,
			EdgeHelps:      raw > 1 && d.Utilization(true) <= 1,
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].RawUtilization != rep.Rows[j].RawUtilization {
			return rep.Rows[i].RawUtilization > rep.Rows[j].RawUtilization
		}
		return rep.Rows[i].App < rep.Rows[j].App
	})
	return rep, nil
}

// Lookup finds one application's row.
func (r *Report) Lookup(app string) (AppRow, bool) {
	for _, row := range r.Rows {
		if row.App == app {
			return row, true
		}
	}
	return AppRow{}, false
}

// Format renders figure-ready lines.
func (r *Report) Format() []string {
	lines := []string{fmt.Sprintf("reference: %d entities, %.0f Mbps backhaul, edge reduction %.0f%%",
		r.Reference.Entities, r.Reference.BackhaulMbps, 100*r.Reduction)}
	for _, row := range r.Rows {
		verdict := "cloud backhaul suffices"
		switch {
		case row.EdgeHelps:
			verdict = "edge aggregation averts congestion"
		case row.RawUtilization > 1:
			verdict = "congested even with edge"
		}
		lines = append(lines, fmt.Sprintf("%-26s %8.2fGB/day  util=%6.2fx  %s",
			row.App, row.GBPerEntityDay, row.RawUtilization, verdict))
	}
	return lines
}
