package bandwidth

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/apps"
)

func TestDeploymentValidation(t *testing.T) {
	good := Deployment{Entities: 10, GBPerEntityDay: 1, Reduction: 0.5, BackhaulMbps: 100}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Deployment{
		{Entities: 0, GBPerEntityDay: 1, BackhaulMbps: 1},
		{Entities: 1, GBPerEntityDay: -1, BackhaulMbps: 1},
		{Entities: 1, GBPerEntityDay: 1, Reduction: 1.5, BackhaulMbps: 1},
		{Entities: 1, GBPerEntityDay: 1, Reduction: -0.1, BackhaulMbps: 1},
		{Entities: 1, GBPerEntityDay: 1, BackhaulMbps: 0},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid deployment accepted", i)
		}
	}
}

func TestDemandArithmetic(t *testing.T) {
	// 1000 entities x 1 GB/day = 8e6 Mbit/day / 86400 s ~ 92.6 Mbps.
	d := Deployment{Entities: 1000, GBPerEntityDay: 1, Reduction: 0.9, BackhaulMbps: 100}
	if got := d.DemandMbps(); math.Abs(got-92.59) > 0.1 {
		t.Errorf("DemandMbps = %v, want ~92.6", got)
	}
	if got := d.EdgeDemandMbps(); math.Abs(got-9.259) > 0.05 {
		t.Errorf("EdgeDemandMbps = %v, want ~9.26", got)
	}
	if got := d.Utilization(false); math.Abs(got-0.9259) > 0.01 {
		t.Errorf("raw utilization = %v", got)
	}
	if got := d.Utilization(true); got >= d.Utilization(false) {
		t.Error("edge did not reduce utilization")
	}
	if got := d.SavedMbps(); math.Abs(got-83.33) > 0.2 {
		t.Errorf("SavedMbps = %v", got)
	}
}

func TestBreakEvenNearPaperThreshold(t *testing.T) {
	// §5: "we estimate 1GB/entity data generation to be a fitting threshold".
	// On the reference metro (100k entities, 10 Gbps), full utilization is
	// reached near 1 GB/entity/day.
	got, err := BreakEvenGBPerEntity(Metro(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.5 || got > 2.0 {
		t.Errorf("break-even = %.2f GB/entity, paper threshold is ~1", got)
	}
	if _, err := BreakEvenGBPerEntity(Metro(), 0); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := BreakEvenGBPerEntity(Deployment{}, 1); err == nil {
		t.Error("invalid deployment accepted")
	}
}

func TestBreakEvenProperty(t *testing.T) {
	// A deployment producing exactly the break-even volume hits exactly the
	// target utilization.
	prop := func(entitiesRaw uint16, backhaulRaw uint16, targetRaw uint8) bool {
		entities := int(entitiesRaw%10000) + 1
		backhaul := float64(backhaulRaw)*10 + 1
		target := 0.1 + float64(targetRaw%20)/10 // 0.1 .. 2.0
		d := Deployment{Entities: entities, BackhaulMbps: backhaul}
		be, err := BreakEvenGBPerEntity(d, target)
		if err != nil {
			return false
		}
		d.GBPerEntityDay = be
		return math.Abs(d.Utilization(false)-target) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJustifyCatalog(t *testing.T) {
	rep, err := Justify(apps.Paper(), Metro(), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != apps.Paper().Len() {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	// Heavy producers: traffic cameras congest the backhaul without edge
	// aggregation; the edge's 95% reduction averts it.
	cam, ok := rep.Lookup("Traffic camera monitoring")
	if !ok {
		t.Fatal("traffic cameras missing")
	}
	if cam.RawUtilization <= 1 {
		t.Errorf("traffic cameras util=%v, want congestion", cam.RawUtilization)
	}
	if !cam.EdgeHelps {
		t.Error("edge should avert camera congestion")
	}
	// Light producers: smart homes never congest; edge aggregation buys
	// nothing (the paper's Q4 argument).
	home, ok := rep.Lookup("Smart home")
	if !ok {
		t.Fatal("smart home missing")
	}
	if home.RawUtilization > 0.5 || home.EdgeHelps {
		t.Errorf("smart home row = %+v", home)
	}
	// Autonomous vehicles produce so much that even the edge cannot keep a
	// full fleet's raw share under the metro backhaul.
	av, ok := rep.Lookup("Autonomous vehicles")
	if !ok {
		t.Fatal("autonomous vehicles missing")
	}
	if av.RawUtilization < 10 {
		t.Errorf("AV util=%v, want massive congestion", av.RawUtilization)
	}
	// Rows are sorted by utilization, descending.
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i-1].RawUtilization < rep.Rows[i].RawUtilization {
			t.Fatal("rows not sorted")
		}
	}
	if lines := rep.Format(); len(lines) != len(rep.Rows)+1 {
		t.Errorf("Format lines = %d", len(lines))
	}
}

func TestJustifyValidation(t *testing.T) {
	if _, err := Justify(nil, Metro(), 0.5); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := Justify(apps.Paper(), Metro(), 1.5); err == nil {
		t.Error("bad reduction accepted")
	}
	if _, err := Justify(apps.Paper(), Deployment{}, 0.5); err == nil {
		t.Error("invalid reference accepted")
	}
	rep, err := Justify(apps.Paper(), Metro(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Lookup("Nonexistent"); ok {
		t.Error("unknown app found")
	}
}
