package expansion

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/world"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

func buildWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 4, Probes: 400})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCountryCandidates(t *testing.T) {
	w := buildWorld(t)
	cands := CountryCandidates(w.Platform, w.Countries)
	if len(cands) < 100 {
		t.Fatalf("only %d candidates (157 countries lack DCs)", len(cands))
	}
	hasDC := map[string]bool{}
	for _, iso := range w.Catalog.Countries() {
		hasDC[iso] = true
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if hasDC[c.Country] {
			t.Errorf("candidate %s already hosts a datacenter", c.Country)
		}
		if seen[c.Country] {
			t.Errorf("duplicate candidate %s", c.Country)
		}
		seen[c.Country] = true
		if !c.Location.Valid() {
			t.Errorf("candidate %s has invalid location", c.Country)
		}
	}
	// Sorted by country code.
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Country >= cands[i].Country {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestGreedyPlanShape(t *testing.T) {
	w := buildWorld(t)
	cands := CountryCandidates(w.Platform, w.Countries)
	plan, err := Greedy(w.Platform, cands, 5, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Selections) != 5 {
		t.Fatalf("plan has %d selections", len(plan.Selections))
	}
	// Every pick improves the mean, and the means chain consistently.
	for i, s := range plan.Selections {
		if s.MeanAfterMs >= s.MeanBeforeMs {
			t.Errorf("pick %d does not improve: %.2f -> %.2f", i, s.MeanBeforeMs, s.MeanAfterMs)
		}
		if i > 0 && plan.Selections[i-1].MeanAfterMs != s.MeanBeforeMs {
			t.Errorf("pick %d mean chain broken", i)
		}
	}
	// Greedy marginal gains are non-increasing (submodularity of the
	// min-of-sites objective).
	prevGain := plan.Selections[0].MeanBeforeMs - plan.Selections[0].MeanAfterMs
	for _, s := range plan.Selections[1:] {
		gain := s.MeanBeforeMs - s.MeanAfterMs
		if gain > prevGain+1e-9 {
			t.Errorf("gain increased: %.3f after %.3f", gain, prevGain)
		}
		prevGain = gain
	}
	if plan.ImprovementMs() <= 0 {
		t.Error("plan has no total improvement")
	}
	if lines := plan.Format(); len(lines) != 6 {
		t.Errorf("Format lines = %d", len(lines))
	}
}

func TestGreedyTargetsUnderservedRegions(t *testing.T) {
	// §6: gains are most significant in developing regions — the first
	// picks should land outside tier-1 Europe/NA.
	w := buildWorld(t)
	cands := CountryCandidates(w.Platform, w.Countries)
	plan, err := Greedy(w.Platform, cands, 3, t0)
	if err != nil {
		t.Fatal(err)
	}
	developed := 0
	for _, s := range plan.Selections {
		c, ok := w.Countries.Lookup(s.Candidate.Country)
		if !ok {
			t.Fatalf("unknown pick %s", s.Candidate.Country)
		}
		if c.Tier == geo.Tier1 && (c.Continent == geo.Europe || c.Continent == geo.NorthAmerica) {
			developed++
		}
	}
	if developed == len(plan.Selections) {
		t.Errorf("all %d picks in well-connected tier-1 EU/NA; §6 expects under-served regions", developed)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	w := buildWorld(t)
	cands := CountryCandidates(w.Platform, w.Countries)
	a, err := Greedy(w.Platform, cands, 3, t0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(w.Platform, cands, 3, t0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Selections {
		if a.Selections[i].Candidate.Country != b.Selections[i].Candidate.Country {
			t.Fatalf("plans diverge at %d", i)
		}
	}
}

func TestGreedyValidation(t *testing.T) {
	w := buildWorld(t)
	cands := CountryCandidates(w.Platform, w.Countries)
	if _, err := Greedy(nil, cands, 1, t0); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := Greedy(w.Platform, cands, 0, t0); err == nil {
		t.Error("zero k accepted")
	}
	if _, err := Greedy(w.Platform, nil, 1, t0); err == nil {
		t.Error("no candidates accepted")
	}
	// k larger than the candidate set is clamped, not an error.
	few := cands[:2]
	plan, err := Greedy(w.Platform, few, 10, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Selections) > 2 {
		t.Errorf("plan has %d selections from 2 candidates", len(plan.Selections))
	}
	if (&Plan{}).ImprovementMs() != 0 {
		t.Error("empty plan improvement not zero")
	}
}
