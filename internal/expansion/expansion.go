// Package expansion implements the paper's §6 future-work direction on
// deployment placement ("research related to tradeoffs in placement and
// utilization of processing capacity"): a greedy facility-location
// optimizer that asks where the *cloud* should expand next to shrink
// global access latency — the paper's counter-argument that many
// feasibility-zone applications "can be supported by a wider deployment of
// cloud/network infrastructure, especially in Asia, Latin America, and
// Africa".
package expansion

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/atlas"
	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/probe"
)

// Candidate is a potential new datacenter site.
type Candidate struct {
	Country  string    // ISO2
	Name     string    // display name
	Location geo.Point // site coordinates
}

// Selection is one greedy pick with its projected effect.
type Selection struct {
	Candidate    Candidate `json:"candidate"`
	MeanBeforeMs float64   `json:"mean_before_ms"` // mean best-RTT across probes before the pick
	MeanAfterMs  float64   `json:"mean_after_ms"`  // after adding the site
}

// Plan is the ordered expansion schedule.
type Plan struct {
	Selections []Selection `json:"selections"`
}

// ImprovementMs returns the total mean-latency reduction of the plan.
func (p *Plan) ImprovementMs() float64 {
	if len(p.Selections) == 0 {
		return 0
	}
	return p.Selections[0].MeanBeforeMs - p.Selections[len(p.Selections)-1].MeanAfterMs
}

// Format renders the plan as text lines.
func (p *Plan) Format() []string {
	lines := []string{"rank  site                         mean-before  mean-after  gain"}
	for i, s := range p.Selections {
		lines = append(lines, fmt.Sprintf("%4d  %-28s %10.1fms %10.1fms %5.1fms",
			i+1, s.Candidate.Name+" ("+s.Candidate.Country+")",
			s.MeanBeforeMs, s.MeanAfterMs, s.MeanBeforeMs-s.MeanAfterMs))
	}
	return lines
}

// CountryCandidates proposes one candidate per probe-hosting country that
// does not already host a datacenter: the country centroid, the natural
// spot for a first in-country region.
func CountryCandidates(p *atlas.Platform, db *geo.DB) []Candidate {
	hasDC := make(map[string]bool)
	for _, iso := range p.Catalog.Countries() {
		hasDC[iso] = true
	}
	probeCountries := make(map[string]bool)
	for _, pr := range p.Population.Public() {
		probeCountries[pr.Country] = true
	}
	var out []Candidate
	for _, c := range p.Population.Countries() {
		if hasDC[c] || !probeCountries[c] {
			continue
		}
		country, ok := db.Lookup(c)
		if !ok {
			continue
		}
		out = append(out, Candidate{Country: c, Name: country.Name, Location: country.Centroid})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// Greedy picks k sites from the candidates, each round choosing the site
// that most reduces the mean best-case RTT across all public probes. The
// estimate samples each (probe, site) path once at the given time; since
// the model is deterministic, so is the plan.
func Greedy(p *atlas.Platform, candidates []Candidate, k int, at time.Time) (*Plan, error) {
	if p == nil {
		return nil, errors.New("expansion: nil platform")
	}
	if k <= 0 {
		return nil, fmt.Errorf("expansion: non-positive k %d", k)
	}
	if len(candidates) == 0 {
		return nil, errors.New("expansion: no candidates")
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	probes := p.Population.Public()
	if len(probes) == 0 {
		return nil, errors.New("expansion: no public probes")
	}

	// Baseline: each probe's best RTT to the existing deployment.
	best := make([]float64, len(probes))
	for i, pr := range probes {
		rtt, err := bestExisting(p, pr, at)
		if err != nil {
			return nil, err
		}
		best[i] = rtt
	}

	// Pre-compute each candidate's RTT to each probe.
	candRTT := make([][]float64, len(candidates))
	for ci, cand := range candidates {
		candRTT[ci] = make([]float64, len(probes))
		for pi, pr := range probes {
			rtt, err := siteRTT(p, pr, cand, at)
			if err != nil {
				return nil, err
			}
			candRTT[ci][pi] = rtt
		}
	}

	plan := &Plan{}
	used := make([]bool, len(candidates))
	for round := 0; round < k; round++ {
		meanBefore := mean(best)
		bestCand, bestMean := -1, meanBefore
		for ci := range candidates {
			if used[ci] {
				continue
			}
			sum := 0.0
			for pi := range probes {
				sum += minF(best[pi], candRTT[ci][pi])
			}
			if m := sum / float64(len(probes)); m < bestMean {
				bestMean, bestCand = m, ci
			}
		}
		if bestCand < 0 {
			break // no candidate improves anything
		}
		used[bestCand] = true
		for pi := range probes {
			best[pi] = minF(best[pi], candRTT[bestCand][pi])
		}
		plan.Selections = append(plan.Selections, Selection{
			Candidate:    candidates[bestCand],
			MeanBeforeMs: meanBefore,
			MeanAfterMs:  bestMean,
		})
	}
	if len(plan.Selections) == 0 {
		return nil, errors.New("expansion: no candidate improves mean latency")
	}
	return plan, nil
}

// bestExisting samples the probe's RTT to every same-continent target and
// the geographically nearest region, returning the minimum.
func bestExisting(p *atlas.Platform, pr *probe.Probe, at time.Time) (float64, error) {
	targets := make([]*cloud.Region, 0, len(p.Targets(pr))+1)
	targets = append(targets, p.Targets(pr)...)
	if nearest := p.Catalog.Nearest(pr.Location); nearest != nil {
		targets = append(targets, nearest)
	}
	bestMs := -1.0
	for _, r := range targets {
		path, err := p.Path(pr, r)
		if err != nil {
			return 0, err
		}
		ms := sampleDelivered(path, at)
		if bestMs < 0 || ms < bestMs {
			bestMs = ms
		}
	}
	if bestMs < 0 {
		return 0, fmt.Errorf("expansion: probe %d has no targets", pr.ID)
	}
	return bestMs, nil
}

// siteRTT estimates the probe's RTT to a hypothetical site. New sites are
// modelled as private-backbone regions (the big providers are the ones
// expanding).
func siteRTT(p *atlas.Platform, pr *probe.Probe, cand Candidate, at time.Time) (float64, error) {
	path, err := p.Model.Path(pr.Site(), netem.Target{
		ID:        "candidate/" + cand.Country,
		Location:  cand.Location,
		Continent: pr.Continent, // in-continent expansion
		Private:   true,
	})
	if err != nil {
		return 0, err
	}
	return sampleDelivered(path, at), nil
}

// sampleDelivered draws the first delivered sample at or after t.
func sampleDelivered(path *netem.Path, at time.Time) float64 {
	for i := 0; ; i++ {
		if ms, lost := path.RTT(at.Add(time.Duration(i) * time.Hour)); !lost {
			return ms
		}
	}
}

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
