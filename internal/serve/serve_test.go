package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/snap"
	"repro/internal/stats"
	"repro/internal/world"
)

// fixture is a built world plus a live binary store the tests append
// to in controlled steps.
type fixture struct {
	world *world.World
	cfg   atlas.CampaignConfig
	mem   *results.Memory
	store *results.Store
	sink  *results.Sink
}

func newFixture(t testing.TB, probes int) *fixture {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 1, Probes: probes})
	if err != nil {
		t.Fatal(err)
	}
	cfg := atlas.TestCampaign()
	var mem results.Memory
	if _, err := w.Platform.RunCampaign(context.Background(), cfg, mem.Add); err != nil {
		t.Fatal(err)
	}
	meta := cfg.Meta(1, w.Probes.Len(), w.Catalog.Len())
	store, sink, err := results.Create(t.TempDir(), meta, results.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.Close() })
	return &fixture{world: w, cfg: cfg, mem: &mem, store: store, sink: sink}
}

// append writes the sample index range [from, to) to the store and
// seals it as complete blocks.
func (f *fixture) append(t testing.TB, from, to int) {
	t.Helper()
	i := 0
	err := f.mem.ForEach(func(s results.Sample) error {
		if i >= from && i < to {
			if err := f.sink.Write(s); err != nil {
				return err
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.sink.Flush(); err != nil {
		t.Fatal(err)
	}
}

// newEngine builds an engine with instruments and a manual refresh
// cadence (tests call Refresh explicitly for determinism).
func (f *fixture) newEngine(t testing.TB) (*Engine, *Metrics) {
	t.Helper()
	m := NewMetrics(obs.NewRegistry())
	e, err := NewEngine(f.store, f.world.Index, Options{
		Workers: 2,
		Refresh: time.Hour,
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, m
}

// coldFigures renders the reference payloads by a from-scratch store
// scan — the exact bytes the offline figures path produces.
func (f *fixture) coldFigures(t testing.TB) map[string]*response {
	t.Helper()
	rep, _, err := core.ScanStoreSnap(context.Background(), f.store, f.world.Index,
		f.store.Meta().Start, BinWidth, 0, nil, core.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	figs, err := renderFigures(rep)
	if err != nil {
		t.Fatal(err)
	}
	return figs
}

func get(h http.Handler, target string, hdr ...string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, target, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServeFiguresMatchColdScan(t *testing.T) {
	f := newFixture(t, 200)
	f.append(t, 0, f.mem.Len())
	e, m := f.newEngine(t)
	if err := e.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := e.Handler()
	cold := f.coldFigures(t)

	for _, fig := range []string{"4", "5", "6", "7"} {
		w := get(h, "/api/v1/figures/"+fig)
		if w.Code != http.StatusOK {
			t.Fatalf("figure %s: status %d: %s", fig, w.Code, w.Body.String())
		}
		if ct := w.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
			t.Fatalf("figure %s: content type %q", fig, ct)
		}
		if !bytes.Equal(w.Body.Bytes(), cold[fig].body) {
			t.Fatalf("figure %s: served bytes differ from cold scan", fig)
		}
		if w.Header().Get("Etag") == "" {
			t.Fatalf("figure %s: no ETag", fig)
		}
	}

	// Conditional request: the snapshot ETag round-trips as a 304.
	etag := get(h, "/api/v1/figures/5").Header().Get("Etag")
	w := get(h, "/api/v1/figures/5", "If-None-Match", etag)
	if w.Code != http.StatusNotModified || w.Body.Len() != 0 {
		t.Fatalf("conditional get: status %d body %d bytes", w.Code, w.Body.Len())
	}

	// The entire figure workload above never scanned the store.
	if got := m.RequestScans.Value(); got != 0 {
		t.Fatalf("figure requests performed %d scans, want 0", got)
	}
	if m.CacheHits.Value() == 0 {
		t.Fatal("repeated figure requests produced no cache hits")
	}
}

func TestServeErrorShape(t *testing.T) {
	f := newFixture(t, 200)
	f.append(t, 0, f.mem.Len())
	e, _ := f.newEngine(t)

	h := e.Handler()
	assertJSONError := func(w *httptest.ResponseRecorder, code int) {
		t.Helper()
		if w.Code != code {
			t.Fatalf("status %d, want %d: %s", w.Code, code, w.Body.String())
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("error content type %q", ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error == "" {
			t.Fatalf("error body %q not {\"error\": ...}: %v", w.Body.String(), err)
		}
	}

	// Before the first publish every endpoint declines with 503.
	assertJSONError(get(h, "/api/v1/figures/5"), http.StatusServiceUnavailable)

	if err := e.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertJSONError(get(h, "/api/v1/figures/9"), http.StatusNotFound)
	assertJSONError(get(h, "/api/v1/quantile?p=2"), http.StatusBadRequest)
	assertJSONError(get(h, "/api/v1/quantile?p=0.5&dist=bogus"), http.StatusBadRequest)
	assertJSONError(get(h, "/api/v1/quantile?p=0.5&continent=XX"), http.StatusBadRequest)
	assertJSONError(get(h, "/api/v1/cdf?since=notatime"), http.StatusBadRequest)
	assertJSONError(get(h, "/api/v1/cdf?since=2019-09-20T00:00:00Z&until=2019-09-10T00:00:00Z"),
		http.StatusBadRequest)

	// Non-GET methods get a uniform 405 naming the allowed method.
	for _, target := range []string{"/api/v1/figures/5", "/api/v1/quantile", "/api/v1/cdf"} {
		req := httptest.NewRequest(http.MethodPost, target, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		assertJSONError(w, http.StatusMethodNotAllowed)
		if allow := w.Header().Get("Allow"); allow != "GET" {
			t.Fatalf("%s: Allow = %q, want GET", target, allow)
		}
	}
}

func TestServeQuantile(t *testing.T) {
	f := newFixture(t, 200)
	f.append(t, 0, f.mem.Len())
	e, _ := f.newEngine(t)
	if err := e.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := e.Handler()

	rep, _, err := core.ScanStoreSnap(context.Background(), f.store, f.world.Index,
		f.store.Meta().Start, BinWidth, 0, nil, core.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, dist := range []string{"full", "min"} {
		w := get(h, "/api/v1/quantile?p=0.5&dist="+dist)
		if w.Code != http.StatusOK {
			t.Fatalf("dist=%s: status %d: %s", dist, w.Code, w.Body.String())
		}
		var body quantileBody
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if body.Snapshot != e.Status().Snapshot {
			t.Fatalf("dist=%s: snapshot %q != status %q", dist, body.Snapshot, e.Status().Snapshot)
		}
		if len(body.Continents) == 0 {
			t.Fatalf("dist=%s: no continents", dist)
		}
		ref := rep.FullDist
		if dist == "min" {
			ref = rep.MinRTT
		}
		for _, c := range body.Continents {
			ct, err := geoParse(t, c.Code)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Quantile(ct, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if c.Value != want {
				t.Fatalf("dist=%s %s: served %v, cold scan %v", dist, c.Code, c.Value, want)
			}
		}
	}

	// Continent filter narrows the answer to one entry.
	w := get(h, "/api/v1/quantile?p=0.9&continent=EU")
	var body quantileBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Continents) != 1 || body.Continents[0].Code != "EU" {
		t.Fatalf("continent filter returned %+v", body.Continents)
	}
}

func TestServeWindowedCDF(t *testing.T) {
	f := newFixture(t, 200)
	f.append(t, 0, f.mem.Len())
	e, m := f.newEngine(t)
	if err := e.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := e.Handler()

	// Reference: the per-continent distribution of every delivered
	// sample, built directly from the in-memory campaign — independent
	// of the scan and pushdown machinery under test.
	refDists := func(since, until time.Time) map[geo.Continent]*stats.Dist {
		out := make(map[geo.Continent]*stats.Dist)
		err := f.mem.ForEach(func(s results.Sample) error {
			if s.Lost || !f.world.Index.Known(s.ProbeID) {
				return nil
			}
			if !since.IsZero() && s.Time.Before(since) {
				return nil
			}
			if !until.IsZero() && !s.Time.Before(until) {
				return nil
			}
			ct, ok := f.world.Index.Continent(s.ProbeID)
			if !ok {
				return nil
			}
			d := out[ct]
			if d == nil {
				d = &stats.Dist{}
				out[ct] = d
			}
			return d.Add(s.RTTms)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	assertMatches := func(body cdfBody, since, until time.Time) int {
		t.Helper()
		ref := refDists(since, until)
		grid := core.DefaultGrid()
		total := 0
		for _, c := range body.Continents {
			ct, err := geoParse(t, c.Code)
			if err != nil {
				t.Fatal(err)
			}
			d, ok := ref[ct]
			if !ok {
				t.Fatalf("%s: served but absent from reference", c.Code)
			}
			if c.Samples != d.N() {
				t.Fatalf("%s: served %d samples, reference %d", c.Code, c.Samples, d.N())
			}
			want, err := d.Curve(grid)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Curve) != len(want) {
				t.Fatalf("%s: curve length %d != %d", c.Code, len(c.Curve), len(want))
			}
			for i := range want {
				if c.Curve[i] != want[i] {
					t.Fatalf("%s: curve[%d] = %+v, reference %+v", c.Code, i, c.Curve[i], want[i])
				}
			}
			total += c.Samples
		}
		return total
	}

	// An open window covers every delivered sample.
	w := get(h, "/api/v1/cdf")
	if w.Code != http.StatusOK {
		t.Fatalf("open window: status %d: %s", w.Code, w.Body.String())
	}
	if got := m.RequestScans.Value(); got != 1 {
		t.Fatalf("open-window cdf ran %d scans, want 1", got)
	}
	var open cdfBody
	if err := json.Unmarshal(w.Body.Bytes(), &open); err != nil {
		t.Fatal(err)
	}
	total := assertMatches(open, time.Time{}, time.Time{})
	if total == 0 {
		t.Fatal("open window saw no samples")
	}

	// A one-week window sees strictly fewer samples — and exactly the
	// reference's — and the identical query hits the cache without a
	// second scan.
	since := f.cfg.Start.Add(7 * 24 * time.Hour)
	until := f.cfg.Start.Add(14 * 24 * time.Hour)
	target := "/api/v1/cdf?since=" + since.Format(time.RFC3339) + "&until=" + until.Format(time.RFC3339)
	w = get(h, target)
	if w.Code != http.StatusOK {
		t.Fatalf("windowed: status %d: %s", w.Code, w.Body.String())
	}
	var windowed cdfBody
	if err := json.Unmarshal(w.Body.Bytes(), &windowed); err != nil {
		t.Fatal(err)
	}
	wtotal := assertMatches(windowed, since, until)
	if wtotal == 0 || wtotal >= total {
		t.Fatalf("windowed samples %d, want within (0, %d)", wtotal, total)
	}
	scansBefore := m.RequestScans.Value()
	if again := get(h, target); !bytes.Equal(again.Body.Bytes(), w.Body.Bytes()) {
		t.Fatal("repeated windowed query served different bytes")
	}
	if got := m.RequestScans.Value(); got != scansBefore {
		t.Fatalf("repeated windowed query rescanned (%d -> %d)", scansBefore, got)
	}
}

// TestServeChurn exercises the cache and snapshot swap under
// concurrent readers and live appends: responses must never mix
// snapshots (one ETag, one body), a completed refresh must serve the
// new fingerprint immediately, and the final state must be
// byte-identical to a cold scan of the finished store.
func TestServeChurn(t *testing.T) {
	f := newFixture(t, 200)
	half := f.mem.Len() / 2
	f.append(t, 0, half)
	e, _ := f.newEngine(t)
	if err := e.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := e.Handler()

	// Readers hammer the API; for any one resource, an ETag must name
	// exactly one body for the whole run (the ETag is snapshot-scoped,
	// so the key is resource+ETag).
	var seen sync.Map // target + etag -> body string
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			targets := []string{"/api/v1/figures/5", "/api/v1/figures/7", "/api/v1/quantile?p=0.5"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				target := targets[(r+i)%len(targets)]
				w := get(h, target)
				if w.Code != http.StatusOK {
					t.Errorf("reader: status %d: %s", w.Code, w.Body.String())
					return
				}
				key := target + "|" + w.Header().Get("Etag")
				body := w.Body.String()
				if prev, ok := seen.LoadOrStore(key, body); ok && prev.(string) != body {
					t.Errorf("%s served two different bodies", key)
					return
				}
			}
		}(r)
	}

	// Appender: grow the store in batches, refreshing after each. A
	// finished refresh must be visible to the very next request.
	const batches = 8
	for b := 0; b < batches; b++ {
		from := half + (f.mem.Len()-half)*b/batches
		to := half + (f.mem.Len()-half)*(b+1)/batches
		f.append(t, from, to)
		prev := e.Status().Snapshot
		if err := e.Refresh(context.Background()); err != nil {
			t.Fatal(err)
		}
		st := e.Status()
		if st.Snapshot == prev {
			t.Fatalf("batch %d: fingerprint did not advance", b)
		}
		if w := get(h, "/api/v1/figures/5"); w.Header().Get("Etag") != etagFor(st.Snapshot) {
			t.Fatalf("batch %d: served %s after publishing %s",
				b, w.Header().Get("Etag"), etagFor(st.Snapshot))
		}
	}
	close(stop)
	wg.Wait()

	cold := f.coldFigures(t)
	for _, fig := range []string{"4", "5", "6", "7"} {
		w := get(h, "/api/v1/figures/"+fig)
		if !bytes.Equal(w.Body.Bytes(), cold[fig].body) {
			t.Fatalf("figure %s after churn differs from cold scan", fig)
		}
	}
	st := e.Status()
	if st.LagBytes != 0 {
		t.Fatalf("lag %d after final refresh", st.LagBytes)
	}
	if st.Samples == 0 || st.CoveredBytes == 0 {
		t.Fatalf("empty coverage in status: %+v", st)
	}
}

// TestServeSeedsFromSnapshot proves a restart resumes from the
// snapshot file instead of rescanning the whole store.
func TestServeSeedsFromSnapshot(t *testing.T) {
	f := newFixture(t, 200)
	f.append(t, 0, f.mem.Len())

	// First engine: cold build, then persist a snapshot via the
	// offline path (serving never writes snapshots itself).
	_, _, err := core.ScanStoreSnap(context.Background(), f.store, f.world.Index,
		f.store.Meta().Start, BinWidth, 0, nil,
		core.SnapshotOptions{Path: f.store.SnapshotPath()})
	if err != nil {
		t.Fatal(err)
	}

	sm := snap.NewMetrics(obs.NewRegistry())
	e, err := NewEngine(f.store, f.world.Index, Options{
		Refresh:      time.Hour,
		SnapshotPath: f.store.SnapshotPath(),
		SnapMetrics:  sm,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sm.Hits.Value() != 1 {
		t.Fatalf("snapshot hits %d, want 1", sm.Hits.Value())
	}
	cold := f.coldFigures(t)
	w := get(e.Handler(), "/api/v1/figures/5")
	if !bytes.Equal(w.Body.Bytes(), cold["5"].body) {
		t.Fatal("snapshot-seeded figure differs from cold scan")
	}
}

// geoParse maps a continent code back to the enum for report lookups.
func geoParse(t testing.TB, code string) (geo.Continent, error) {
	t.Helper()
	ct, err := geo.ParseContinent(code)
	if err != nil {
		return ct, fmt.Errorf("bad continent code %q: %w", code, err)
	}
	return ct, nil
}
