package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// benchFile is the BENCH_serve.json shape: provenance plus one entry
// per load scenario.
type benchFile struct {
	Bench      string       `json:"bench"`
	Mode       string       `json:"mode"`
	GitSHA     string       `json:"git_sha"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Timestamp  string       `json:"timestamp"`
	Scenarios  []LoadResult `json:"scenarios"`
}

// TestServeLoadBench is the closed-loop load benchmark behind
// scripts/bench.sh serve: it measures sustained QPS and p50/p99/p999
// against the serving layer with the cache on and off, at steady state
// and during active ingestion, and writes BENCH_serve.json. Gated on
// SERVE_BENCH_OUT so ordinary `go test` runs skip it.
func TestServeLoadBench(t *testing.T) {
	out := os.Getenv("SERVE_BENCH_OUT")
	if out == "" {
		t.Skip("set SERVE_BENCH_OUT to run the serve load benchmark")
	}
	mode := "smoke"
	dur := 250 * time.Millisecond
	probes := 200
	if os.Getenv("SERVE_BENCH_FULL") != "" {
		mode = "full"
		dur = 2 * time.Second
		probes = 800
	}

	f := newFixture(t, probes)
	// Static prefix: most of the campaign. The rest feeds the
	// ingestion scenarios. Sealed in small blocks so the store has the
	// block count of a long-running campaign — the regime the windowed
	// scenarios are about (a handful of giant blocks would make every
	// window pure edge decode for scan and index alike).
	staticEnd := f.mem.Len() * 3 / 4
	const benchBlockRows = 512
	for off := 0; off < staticEnd; off += benchBlockRows {
		end := off + benchBlockRows
		if end > staticEnd {
			end = staticEnd
		}
		f.append(t, off, end)
	}
	e, _ := f.newEngine(t)
	ctx := context.Background()
	if err := e.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	h := e.Handler()

	// A second engine over the same store maintains the temporal
	// aggregate index, so the windowed scenarios measure index
	// composition against the per-window scan on identical data.
	tixEng, err := NewEngine(f.store, f.world.Index, Options{
		Workers: 2,
		Refresh: time.Hour,
		Metrics: NewMetrics(nil),
		TixPath: f.store.TixPath(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tixEng.Close()
	if err := tixEng.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	hTix := tixEng.Handler()

	figurePaths := []string{
		"/api/v1/figures/4", "/api/v1/figures/5",
		"/api/v1/figures/6", "/api/v1/figures/7",
	}
	quantilePaths := []string{
		"/api/v1/quantile?p=0.5", "/api/v1/quantile?p=0.99",
		"/api/v1/quantile?p=0.5&dist=min",
	}
	mixed := append(append([]string{}, figurePaths...), quantilePaths...)
	windowPaths := windowLoadPaths(f, 64)

	runOn := func(eng *Engine, hh http.Handler, name string, cacheOn bool, workers int, paths []string) LoadResult {
		eng.SetCacheBypass(!cacheOn)
		defer eng.SetCacheBypass(false)
		res := RunLoad(name, hh, LoadOptions{Duration: dur, Workers: workers, Paths: paths})
		if res.Errors > 0 {
			t.Fatalf("%s: %d request errors", name, res.Errors)
		}
		if res.Requests == 0 {
			t.Fatalf("%s: no requests completed", name)
		}
		return res
	}
	run := func(name string, cacheOn bool, paths []string) LoadResult {
		return runOn(e, h, name, cacheOn, 0, paths)
	}

	var scenarios []LoadResult
	scenarios = append(scenarios,
		run("figures_cache", true, figurePaths),
		run("figures_nocache", false, figurePaths),
		run("quantile_cache", true, quantilePaths),
		run("quantile_nocache", false, quantilePaths),
	)

	// Windowed CDF scenarios over 64 distinct windows. The cold pair
	// bypasses the cache so every request materializes its window: _scan
	// decodes every matching block, _index composes pre-merged segment
	// nodes plus edge blocks. The _cache variant repeats the same
	// distinct windows with the cache on — steady-state for a dashboard
	// cycling a fixed window set. The worker sweep shows how index
	// composition scales with client concurrency.
	scenarios = append(scenarios,
		runOn(e, h, "cdf_window_scan", false, 0, windowPaths),
		runOn(tixEng, hTix, "cdf_window_index", false, 0, windowPaths),
		runOn(tixEng, hTix, "cdf_window_index_cache", true, 0, windowPaths),
	)
	for _, workers := range []int{1, 2, 4} {
		scenarios = append(scenarios, runOn(tixEng, hTix,
			fmt.Sprintf("cdf_window_index_w%d", workers), false, workers, windowPaths))
	}

	// Ingestion scenarios: an appender feeds the store in small batches
	// while the refresher folds them, so requests race live snapshot
	// swaps and cache invalidations.
	ingest := func(name string, cacheOn bool) LoadResult {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			const batches = 16
			for b := 0; ; b = (b + 1) % batches {
				select {
				case <-stop:
					return
				default:
				}
				from := staticEnd + (f.mem.Len()-staticEnd)*b/batches
				to := staticEnd + (f.mem.Len()-staticEnd)*(b+1)/batches
				f.append(t, from, to)
				if err := e.Refresh(context.Background()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		res := run(name, cacheOn, mixed)
		close(stop)
		wg.Wait()
		return res
	}
	scenarios = append(scenarios,
		ingest("mixed_cache_ingest", true),
		ingest("mixed_nocache_ingest", false),
	)

	file := benchFile{
		Bench:      "serve",
		Mode:       mode,
		GitSHA:     envOr("SERVE_BENCH_GIT_SHA", "unknown"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scenarios:  scenarios,
	}
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, s := range scenarios {
		t.Logf("%-22s %8.0f qps  p50 %7.1fµs  p99 %8.1fµs  p999 %9.1fµs  (%d reqs)",
			s.Scenario, s.QPS, s.P50us, s.P99us, s.P999us, s.Requests)
	}
}

// windowLoadPaths generates n distinct windowed /cdf targets with
// deterministic, deliberately unaligned boundaries across the campaign
// span, so nearly every window splits blocks at both edges.
func windowLoadPaths(f *fixture, n int) []string {
	rng := rand.New(rand.NewSource(97))
	start, end := f.cfg.Start, f.cfg.End
	span := int64(end.Sub(start))
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		a := time.Duration(rng.Int63n(span))
		b := time.Duration(rng.Int63n(span))
		if a > b {
			a, b = b, a
		}
		paths = append(paths, "/api/v1/cdf?since="+start.Add(a).Format(time.RFC3339)+
			"&until="+start.Add(b+time.Minute).Format(time.RFC3339))
	}
	return paths
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}
