package serve

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// benchFile is the BENCH_serve.json shape: provenance plus one entry
// per load scenario.
type benchFile struct {
	Bench      string       `json:"bench"`
	Mode       string       `json:"mode"`
	GitSHA     string       `json:"git_sha"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Timestamp  string       `json:"timestamp"`
	Scenarios  []LoadResult `json:"scenarios"`
}

// TestServeLoadBench is the closed-loop load benchmark behind
// scripts/bench.sh serve: it measures sustained QPS and p50/p99/p999
// against the serving layer with the cache on and off, at steady state
// and during active ingestion, and writes BENCH_serve.json. Gated on
// SERVE_BENCH_OUT so ordinary `go test` runs skip it.
func TestServeLoadBench(t *testing.T) {
	out := os.Getenv("SERVE_BENCH_OUT")
	if out == "" {
		t.Skip("set SERVE_BENCH_OUT to run the serve load benchmark")
	}
	mode := "smoke"
	dur := 250 * time.Millisecond
	probes := 200
	if os.Getenv("SERVE_BENCH_FULL") != "" {
		mode = "full"
		dur = 2 * time.Second
		probes = 800
	}

	f := newFixture(t, probes)
	// Static prefix: most of the campaign. The rest feeds the
	// ingestion scenarios.
	staticEnd := f.mem.Len() * 3 / 4
	f.append(t, 0, staticEnd)
	e, _ := f.newEngine(t)
	ctx := context.Background()
	if err := e.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	h := e.Handler()

	figurePaths := []string{
		"/api/v1/figures/4", "/api/v1/figures/5",
		"/api/v1/figures/6", "/api/v1/figures/7",
	}
	quantilePaths := []string{
		"/api/v1/quantile?p=0.5", "/api/v1/quantile?p=0.99",
		"/api/v1/quantile?p=0.5&dist=min",
	}
	mixed := append(append([]string{}, figurePaths...), quantilePaths...)

	run := func(name string, cacheOn bool, paths []string) LoadResult {
		e.SetCacheBypass(!cacheOn)
		defer e.SetCacheBypass(false)
		res := RunLoad(name, h, LoadOptions{Duration: dur, Paths: paths})
		if res.Errors > 0 {
			t.Fatalf("%s: %d request errors", name, res.Errors)
		}
		if res.Requests == 0 {
			t.Fatalf("%s: no requests completed", name)
		}
		return res
	}

	var scenarios []LoadResult
	scenarios = append(scenarios,
		run("figures_cache", true, figurePaths),
		run("figures_nocache", false, figurePaths),
		run("quantile_cache", true, quantilePaths),
		run("quantile_nocache", false, quantilePaths),
	)

	// Ingestion scenarios: an appender feeds the store in small batches
	// while the refresher folds them, so requests race live snapshot
	// swaps and cache invalidations.
	ingest := func(name string, cacheOn bool) LoadResult {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			const batches = 16
			for b := 0; ; b = (b + 1) % batches {
				select {
				case <-stop:
					return
				default:
				}
				from := staticEnd + (f.mem.Len()-staticEnd)*b/batches
				to := staticEnd + (f.mem.Len()-staticEnd)*(b+1)/batches
				f.append(t, from, to)
				if err := e.Refresh(context.Background()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		res := run(name, cacheOn, mixed)
		close(stop)
		wg.Wait()
		return res
	}
	scenarios = append(scenarios,
		ingest("mixed_cache_ingest", true),
		ingest("mixed_nocache_ingest", false),
	)

	file := benchFile{
		Bench:      "serve",
		Mode:       mode,
		GitSHA:     envOr("SERVE_BENCH_GIT_SHA", "unknown"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scenarios:  scenarios,
	}
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, s := range scenarios {
		t.Logf("%-22s %8.0f qps  p50 %7.1fµs  p99 %8.1fµs  p999 %9.1fµs  (%d reqs)",
			s.Scenario, s.QPS, s.P50us, s.P99us, s.P999us, s.Requests)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}
