package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/stats"
)

// newTixEngine builds an engine maintaining the temporal aggregate
// index at the store's sidecar path.
func (f *fixture) newTixEngine(t testing.TB) (*Engine, *Metrics) {
	t.Helper()
	m := NewMetrics(obs.NewRegistry())
	e, err := NewEngine(f.store, f.world.Index, Options{
		Workers: 2,
		Refresh: time.Hour,
		Metrics: m,
		TixPath: f.store.TixPath(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, m
}

// windowTarget formats a windowed query URL.
func windowTarget(path string, since, until time.Time) string {
	target := path
	sep := "?"
	if p := len(path); p > 0 && path[p-1] == '9' { // already has params (p=0.9)
		sep = "&"
	}
	if !since.IsZero() {
		target += sep + "since=" + since.Format(time.RFC3339)
		sep = "&"
	}
	if !until.IsZero() {
		target += sep + "until=" + until.Format(time.RFC3339)
	}
	return target
}

// TestServeWindowedIndexByteIdentity is the tentpole acceptance gate on
// the serving side: for every window shape — unbounded, block-aligned,
// block-splitting, empty, reaching past the sealed data — the
// index-composed response must be byte-identical to the per-window
// scan an index-less engine runs. Both engines publish the same
// snapshot fingerprint over the same store, so any divergence is the
// index's fault.
func TestServeWindowedIndexByteIdentity(t *testing.T) {
	f := newFixture(t, 200)
	f.append(t, 0, f.mem.Len())

	scanEng, scanM := f.newEngine(t)
	tixEng, tixM := f.newTixEngine(t)
	ctx := context.Background()
	if err := scanEng.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tixEng.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := tixEng.Status().Snapshot, scanEng.Status().Snapshot; got != want {
		t.Fatalf("engines publish different snapshots: %q vs %q", got, want)
	}
	hScan, hTix := scanEng.Handler(), tixEng.Handler()

	start, end := f.cfg.Start, f.cfg.End
	type window struct {
		name         string
		since, until time.Time
	}
	wins := []window{
		{"open", time.Time{}, time.Time{}},
		{"open-until", start.Add(11 * 24 * time.Hour), time.Time{}},
		{"open-since", time.Time{}, start.Add(5 * 24 * time.Hour)},
		{"one-week", start.Add(7 * 24 * time.Hour), start.Add(14 * 24 * time.Hour)},
		{"odd-minutes", start.Add(50*time.Hour + 13*time.Minute), start.Add(200*time.Hour + 41*time.Minute)},
		{"empty", start.Add(time.Hour), start.Add(time.Hour + time.Second)},
		{"before-campaign", start.Add(-48 * time.Hour), start.Add(-time.Nanosecond)},
		{"past-sealed-end", end.Add(-24 * time.Hour), end.Add(365 * 24 * time.Hour)},
	}
	rng := rand.New(rand.NewSource(41))
	span := end.Sub(start)
	for i := 0; i < 8; i++ {
		a := time.Duration(rng.Int63n(int64(span)))
		b := time.Duration(rng.Int63n(int64(span)))
		if a > b {
			a, b = b, a
		}
		wins = append(wins, window{"random-" + string(rune('a'+i)), start.Add(a), start.Add(b + time.Second)})
	}

	for _, win := range wins {
		t.Run(win.name, func(t *testing.T) {
			target := windowTarget("/api/v1/cdf", win.since, win.until)
			ws := get(hScan, target)
			wt := get(hTix, target)
			if ws.Code != http.StatusOK || wt.Code != http.StatusOK {
				t.Fatalf("status scan=%d tix=%d: %s / %s", ws.Code, wt.Code, ws.Body.String(), wt.Body.String())
			}
			if ws.Body.String() != wt.Body.String() {
				t.Fatalf("index-composed window diverges from scan:\nscan: %.200s\ntix:  %.200s",
					ws.Body.String(), wt.Body.String())
			}
		})
	}

	// The identical answers must have come from different machinery.
	if got := tixM.WindowIndexQueries.Value(); got == 0 {
		t.Fatal("tix engine never used the index")
	}
	if got := tixM.RequestScans.Value(); got != 0 {
		t.Fatalf("tix engine ran %d request-path scans", got)
	}
	if got := tixM.WindowIndexFallbacks.Value(); got != 0 {
		t.Fatalf("tix engine fell back %d times", got)
	}
	if got := scanM.RequestScans.Value(); got == 0 {
		t.Fatal("scan engine never scanned")
	}
}

// TestServeWindowedQuantile covers the new windowed /quantile variant:
// values answer from the same window materialization as /cdf (index
// and scan engines byte-identical), the min distribution rejects
// windows, and repeats hit the cache without re-materializing.
func TestServeWindowedQuantile(t *testing.T) {
	f := newFixture(t, 200)
	f.append(t, 0, f.mem.Len())
	e, m := f.newTixEngine(t)
	scanEng, _ := f.newEngine(t)
	ctx := context.Background()
	if err := e.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if err := scanEng.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	h, hScan := e.Handler(), scanEng.Handler()

	since := f.cfg.Start.Add(3 * 24 * time.Hour)
	until := f.cfg.Start.Add(17 * 24 * time.Hour)
	target := windowTarget("/api/v1/quantile?p=0.9", since, until)

	w := get(h, target)
	if w.Code != http.StatusOK {
		t.Fatalf("windowed quantile: status %d: %s", w.Code, w.Body.String())
	}
	var body quantileBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Since == "" || body.Until == "" {
		t.Fatalf("windowed response does not echo the window: %+v", body)
	}
	if len(body.Continents) == 0 {
		t.Fatal("windowed quantile served no continents")
	}

	// Reference: fold the in-memory campaign over the window and take
	// the same quantile.
	ref := make(map[geo.Continent]*stats.Dist)
	err := f.mem.ForEach(func(s results.Sample) error {
		if s.Lost || !f.world.Index.Known(s.ProbeID) {
			return nil
		}
		if s.Time.Before(since) || !s.Time.Before(until) {
			return nil
		}
		ct, ok := f.world.Index.Continent(s.ProbeID)
		if !ok {
			return nil
		}
		if ref[ct] == nil {
			ref[ct] = &stats.Dist{}
		}
		return ref[ct].Add(s.RTTms)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range body.Continents {
		ct, err := geoParse(t, c.Code)
		if err != nil {
			t.Fatal(err)
		}
		d := ref[ct]
		if d == nil {
			t.Fatalf("%s: served but absent from reference", c.Code)
		}
		if c.Samples != d.N() {
			t.Fatalf("%s: served %d samples, reference %d", c.Code, c.Samples, d.N())
		}
		want, err := d.Quantile(0.9)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value != want {
			t.Fatalf("%s: served q90 %v, reference %v", c.Code, c.Value, want)
		}
	}

	// Index path and scan path serve identical bytes.
	if ws := get(hScan, target); ws.Body.String() != w.Body.String() {
		t.Fatalf("windowed quantile diverges between index and scan engines:\n%s\n%s",
			w.Body.String(), ws.Body.String())
	}

	// Repeats are cache hits, not re-materializations.
	queries := m.WindowIndexQueries.Value()
	if again := get(h, target); again.Body.String() != w.Body.String() {
		t.Fatal("repeated windowed quantile served different bytes")
	}
	if got := m.WindowIndexQueries.Value(); got != queries {
		t.Fatalf("repeat re-queried the index (%d -> %d)", queries, got)
	}

	// A windowed min-RTT quantile has no pre-aggregated form: 400.
	if w := get(h, windowTarget("/api/v1/quantile?p=0.9", since, until)+"&dist=min"); w.Code != http.StatusBadRequest {
		t.Fatalf("windowed dist=min: status %d, want 400", w.Code)
	}
	// And the unwindowed endpoints still serve both dists.
	for _, dist := range []string{"full", "min"} {
		if w := get(h, "/api/v1/quantile?p=0.5&dist="+dist); w.Code != http.StatusOK {
			t.Fatalf("unwindowed dist=%s: status %d", dist, w.Code)
		}
	}
}

// TestServeFillDeadline pins the hard fill deadline: a windowed
// materialization that cannot finish inside FillTimeout answers 504
// and counts one fill timeout, with or without the index.
func TestServeFillDeadline(t *testing.T) {
	f := newFixture(t, 200)
	f.append(t, 0, f.mem.Len())
	for _, withTix := range []bool{false, true} {
		name := "scan"
		if withTix {
			name = "tix"
		}
		t.Run(name, func(t *testing.T) {
			m := NewMetrics(obs.NewRegistry())
			opt := Options{
				Workers:     2,
				Refresh:     time.Hour,
				Metrics:     m,
				FillTimeout: time.Nanosecond, // every fill blows the deadline
			}
			if withTix {
				opt.TixPath = f.store.TixPath()
			}
			e, err := NewEngine(f.store, f.world.Index, opt)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { e.Close() })
			if err := e.Refresh(context.Background()); err != nil {
				t.Fatal(err)
			}
			w := get(e.Handler(), "/api/v1/cdf")
			if w.Code != http.StatusGatewayTimeout {
				t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
			}
			if got := m.FillTimeouts.Value(); got != 1 {
				t.Fatalf("serve_fill_timeouts_total = %d, want 1", got)
			}
			// Figures never materialize windows; they stay immune to the
			// pathological deadline.
			if w := get(e.Handler(), "/api/v1/figures/5"); w.Code != http.StatusOK {
				t.Fatalf("figure under tiny fill deadline: status %d", w.Code)
			}
		})
	}
}
