// Package serve is the hot-path query serving layer embedded in
// atlasd: it keeps a decoded analysis suite resident in memory,
// advances it incrementally as the campaign appends, and answers
// figure, quantile, and windowed-CDF queries from that state — never
// from a cold scan. A sharded read cache with singleflight coalescing
// sits in front, keyed by (endpoint, parameters, snapshot fingerprint)
// and invalidated wholesale whenever the snapshot advances.
package serve

import (
	"repro/internal/obs"
)

// Metrics are the serving layer's instruments. A nil *Metrics (or any
// nil field) disables that instrument; the handlers never guard.
type Metrics struct {
	// Requests counts served requests by route.
	Requests *obs.CounterVec // route
	// RequestSeconds is the end-to-end handler latency by route.
	RequestSeconds *obs.HistogramVec // route
	// CacheHits counts responses served from a finished cache entry.
	CacheHits *obs.Counter
	// CacheMisses counts requests that had to compute their response.
	CacheMisses *obs.Counter
	// Coalesced counts requests that waited on another request's
	// in-flight computation instead of repeating it.
	Coalesced *obs.Counter
	// StaleServed counts responses rendered from a snapshot older than
	// the store's stable tail at request time — served fresh enough to
	// answer, but behind the appender.
	StaleServed *obs.Counter
	// RequestScans counts store scans performed on the request path.
	// Steady-state figure and quantile requests must never scan; only
	// windowed queries that missed the temporal index contribute here.
	RequestScans *obs.Counter
	// FillTimeouts counts cache fills that hit the hard fill deadline
	// and answered 504 instead of scanning unboundedly.
	FillTimeouts *obs.Counter
	// WindowIndexQueries counts windowed requests materialized through
	// the temporal aggregate index instead of a block scan.
	WindowIndexQueries *obs.Counter
	// WindowIndexNodes and WindowIndexEdgeBlocks accumulate, across
	// index-served windows, the pre-merged segment nodes composed and
	// the boundary blocks that still had to decode.
	WindowIndexNodes      *obs.Counter
	WindowIndexEdgeBlocks *obs.Counter
	// WindowIndexFallbacks counts windowed requests that had a live
	// index view but fell back to scanning after a query error.
	WindowIndexFallbacks *obs.Counter
	// Refreshes counts snapshot advances published by the refresher.
	Refreshes *obs.Counter
	// RefreshErrors counts refresher passes that failed and kept the
	// previous snapshot.
	RefreshErrors *obs.Counter
	// RefreshSeconds is the latency of one refresh pass (delta scan,
	// merge, report, render).
	RefreshSeconds *obs.Histogram
	// RefreshLagBytes is the gap between the store's stable data end and
	// the published snapshot's covered boundary.
	RefreshLagBytes *obs.Gauge
	// CoveredBytes and CoveredBlocks mirror the published snapshot's
	// coverage; Samples the rows folded into it.
	CoveredBytes  *obs.Gauge
	CoveredBlocks *obs.Gauge
	Samples       *obs.Gauge
}

// NewMetrics registers the serving instrument set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Requests: reg.CounterVec("serve_requests_total",
			"Requests answered by the serving layer.", "route"),
		RequestSeconds: reg.HistogramVec("serve_request_seconds",
			"Serving-layer request latency.", obs.DurationBuckets, "route"),
		CacheHits: reg.Counter("serve_cache_hits_total",
			"Requests served from a finished cache entry."),
		CacheMisses: reg.Counter("serve_cache_misses_total",
			"Requests that computed their response."),
		Coalesced: reg.Counter("serve_cache_coalesced_total",
			"Requests that waited on an in-flight identical computation."),
		StaleServed: reg.Counter("serve_stale_served_total",
			"Responses rendered behind the store's stable tail."),
		RequestScans: reg.Counter("serve_request_scans_total",
			"Store scans performed on the request path (windowed queries that missed the index)."),
		FillTimeouts: reg.Counter("serve_fill_timeouts_total",
			"Cache fills aborted by the hard fill deadline."),
		WindowIndexQueries: reg.Counter("serve_window_index_queries_total",
			"Windowed requests materialized through the temporal aggregate index."),
		WindowIndexNodes: reg.Counter("serve_window_index_nodes_total",
			"Pre-merged segment nodes composed across index-served windows."),
		WindowIndexEdgeBlocks: reg.Counter("serve_window_index_edge_blocks_total",
			"Boundary blocks decoded across index-served windows."),
		WindowIndexFallbacks: reg.Counter("serve_window_index_fallbacks_total",
			"Windowed requests that fell back from the index to a block scan."),
		Refreshes: reg.Counter("serve_refresh_total",
			"Snapshot advances published by the refresher."),
		RefreshErrors: reg.Counter("serve_refresh_errors_total",
			"Refresh passes that failed and kept the previous snapshot."),
		RefreshSeconds: reg.Histogram("serve_refresh_seconds",
			"Latency of one refresh pass.", obs.DurationBuckets),
		RefreshLagBytes: reg.Gauge("serve_refresh_lag_bytes",
			"Store bytes past the published snapshot's covered boundary."),
		CoveredBytes: reg.Gauge("serve_snapshot_covered_bytes",
			"Covered byte boundary of the published snapshot."),
		CoveredBlocks: reg.Gauge("serve_snapshot_covered_blocks",
			"Covered block count of the published snapshot."),
		Samples: reg.Gauge("serve_snapshot_samples",
			"Samples folded into the published snapshot."),
	}
}
