package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/colf"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/httpapi"
	"repro/internal/scan"
	"repro/internal/stats"
	"repro/internal/tix"
)

// Handler returns the serving layer's HTTP surface:
//
//	GET /api/v1/figures/{fig}  fig in 4|5|6|7 — paper-exact figure text
//	GET /api/v1/quantile       ?p=0.5[&dist=full|min][&continent=EU]
//	GET /api/v1/cdf            ?since=RFC3339&until=RFC3339
//
// Every endpoint answers from the published snapshot through the read
// cache; non-GET methods get a uniform 405 with Allow.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/figures/{fig}", e.route("figures", e.handleFigure))
	mux.HandleFunc("GET /api/v1/quantile", e.route("quantile", e.handleQuantile))
	mux.HandleFunc("GET /api/v1/cdf", e.route("cdf", e.handleCDF))
	methodGate := func(w http.ResponseWriter, r *http.Request) {
		httpapi.MethodNotAllowed(w, r, http.MethodGet)
	}
	mux.HandleFunc("/api/v1/figures/{fig}", methodGate)
	mux.HandleFunc("/api/v1/quantile", methodGate)
	mux.HandleFunc("/api/v1/cdf", methodGate)
	return mux
}

// route wraps a handler with the per-route request instruments.
func (e *Engine) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := e.opt.Metrics.nilSafe()
		t0 := time.Now()
		h(w, r)
		m.Requests.With(name).Inc()
		m.RequestSeconds.With(name).Observe(time.Since(t0).Seconds())
	}
}

// view loads the published snapshot, answering 503 (and returning nil)
// before the first publish.
func (e *Engine) view(w http.ResponseWriter) *snapshotView {
	v := e.cur.Load()
	if v == nil {
		httpapi.Error(w, http.StatusServiceUnavailable, "no snapshot published yet")
	}
	return v
}

// serveCached runs key through the read cache and writes the result,
// handling conditional requests (If-None-Match against the snapshot
// ETag) and the hit/coalesced/stale accounting.
func (e *Engine) serveCached(w http.ResponseWriter, r *http.Request, key string, fill func() (*response, error)) {
	m := e.opt.Metrics.nilSafe()
	var (
		resp        *response
		err         error
		hit, waited bool
	)
	if e.bypassCache.Load() {
		resp, err = fill()
	} else {
		resp, err, hit, waited = e.cache.do(key, fill)
	}
	switch {
	case hit:
		m.CacheHits.Inc()
	case waited:
		m.Coalesced.Inc()
	default:
		m.CacheMisses.Inc()
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			httpapi.Error(w, http.StatusGatewayTimeout, "window materialization exceeded the fill deadline")
			return
		}
		httpapi.Error(w, http.StatusInternalServerError, err.Error())
		return
	}
	if e.lag.Load() > 0 {
		m.StaleServed.Inc()
	}
	if resp.etag != "" {
		w.Header().Set("Etag", resp.etag)
		if r.Header.Get("If-None-Match") == resp.etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("Content-Type", resp.contentType)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// jsonResponse marshals v into a cacheable response stamped with the
// snapshot's ETag.
func jsonResponse(v any, fingerprint string) (*response, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return &response{
		status:      http.StatusOK,
		contentType: "application/json",
		etag:        etagFor(fingerprint),
		body:        append(body, '\n'),
	}, nil
}

func (e *Engine) handleFigure(w http.ResponseWriter, r *http.Request) {
	v := e.view(w)
	if v == nil {
		return
	}
	fig := r.PathValue("fig")
	resp, ok := v.figures[fig]
	if !ok {
		httpapi.Errorf(w, http.StatusNotFound, "unknown figure %q (serving 4, 5, 6, 7)", fig)
		return
	}
	// The payload was rendered at publish time; the fill is a pointer
	// hand-off, never a scan.
	key := "figures/" + fig + "@" + v.fingerprint
	e.serveCached(w, r, key, func() (*response, error) { return resp, nil })
}

// quantileDTO is one continent's answer on /api/v1/quantile.
type quantileDTO struct {
	Continent string  `json:"continent"`
	Code      string  `json:"code"`
	Samples   int     `json:"samples"`
	Value     float64 `json:"value_ms"`
}

// quantileBody is the /api/v1/quantile response shape. Since/Until
// echo back only on windowed queries.
type quantileBody struct {
	Snapshot   string        `json:"snapshot"`
	Dist       string        `json:"dist"`
	P          float64       `json:"p"`
	Since      string        `json:"since,omitempty"`
	Until      string        `json:"until,omitempty"`
	Continents []quantileDTO `json:"continents"`
}

func (e *Engine) handleQuantile(w http.ResponseWriter, r *http.Request) {
	v := e.view(w)
	if v == nil {
		return
	}
	q := r.URL.Query()
	p, err := strconv.ParseFloat(q.Get("p"), 64)
	if err != nil || p < 0 || p > 1 {
		httpapi.Errorf(w, http.StatusBadRequest, "p must be a number in [0, 1], got %q", q.Get("p"))
		return
	}
	distName := q.Get("dist")
	if distName == "" {
		distName = "full"
	}
	since, until, ok := e.parseWindow(w, q)
	if !ok {
		return
	}
	windowed := !since.IsZero() || !until.IsZero()
	var rep *core.CDFReport
	switch distName {
	case "full":
		rep = v.rep.FullDist
	case "min":
		if windowed {
			// The min-RTT distribution is a whole-campaign per-probe
			// reduction; a time slice of it has no pre-aggregated form.
			httpapi.Error(w, http.StatusBadRequest, "windowed quantiles serve dist=full only")
			return
		}
		rep = v.rep.MinRTT
	default:
		httpapi.Errorf(w, http.StatusBadRequest, "dist must be full or min, got %q", distName)
		return
	}
	only := geo.ContinentUnknown
	if s := q.Get("continent"); s != "" {
		ct, err := geo.ParseContinent(s)
		if err != nil {
			httpapi.Error(w, http.StatusBadRequest, err.Error())
			return
		}
		only = ct
	}
	render := func(rep *core.CDFReport) (*response, error) {
		body := quantileBody{Snapshot: v.fingerprint, Dist: distName, P: p}
		if !since.IsZero() {
			body.Since = since.Format(time.RFC3339)
		}
		if !until.IsZero() {
			body.Until = until.Format(time.RFC3339)
		}
		for _, ct := range rep.Continents() {
			if only != geo.ContinentUnknown && ct != only {
				continue
			}
			d, _ := rep.Dist(ct)
			val, err := rep.Quantile(ct, p)
			if err != nil {
				return nil, err
			}
			body.Continents = append(body.Continents, quantileDTO{
				Continent: ct.String(), Code: ct.Code(), Samples: d.N(), Value: val,
			})
		}
		return jsonResponse(body, v.fingerprint)
	}
	if windowed {
		pred := &colf.Predicate{Since: since, Until: until}
		key := fmt.Sprintf("quantile?dist=%s&p=%.17g&continent=%v&%s@%s", distName, p, only, pred.Key(), v.fingerprint)
		ctx, cancel := e.fillContext(r)
		defer cancel()
		e.serveCached(w, r, key, func() (*response, error) {
			wrep, err := e.windowReport(ctx, v, pred)
			if err != nil {
				return nil, err
			}
			return render(wrep)
		})
		return
	}
	key := fmt.Sprintf("quantile?dist=%s&p=%.17g&continent=%v@%s", distName, p, only, v.fingerprint)
	e.serveCached(w, r, key, func() (*response, error) {
		// Post-render, every report distribution is materialized and
		// sorted, so these rank queries are read-only — no scan, no
		// mutation, safe under concurrent readers.
		return render(rep)
	})
}

// cdfDTO is one continent's curve on /api/v1/cdf.
type cdfDTO struct {
	Continent string           `json:"continent"`
	Code      string           `json:"code"`
	Samples   int              `json:"samples"`
	Curve     []stats.CDFPoint `json:"curve"`
}

// cdfBody is the /api/v1/cdf response shape. The window bounds echo
// back as RFC 3339 strings, absent when that side was open.
type cdfBody struct {
	Snapshot   string   `json:"snapshot"`
	Since      string   `json:"since,omitempty"`
	Until      string   `json:"until,omitempty"`
	Continents []cdfDTO `json:"continents"`
}

// parseWindowTime accepts RFC 3339 timestamps.
func parseWindowTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, s)
}

// parseWindow extracts and validates the since/until query params,
// answering 400 itself (ok=false) on bad input.
func (e *Engine) parseWindow(w http.ResponseWriter, q url.Values) (since, until time.Time, ok bool) {
	since, err := parseWindowTime(q.Get("since"))
	if err != nil {
		httpapi.Errorf(w, http.StatusBadRequest, "since: %v", err)
		return since, until, false
	}
	until, err = parseWindowTime(q.Get("until"))
	if err != nil {
		httpapi.Errorf(w, http.StatusBadRequest, "until: %v", err)
		return since, until, false
	}
	if !since.IsZero() && !until.IsZero() && !since.Before(until) {
		httpapi.Error(w, http.StatusBadRequest, "since must precede until")
		return since, until, false
	}
	return since, until, true
}

// fillContext builds the context a cache fill runs under: decoupled
// from the request's cancellation (the leader aborting must not poison
// coalesced waiters) but bounded by the hard fill deadline, so a
// runaway materialization answers 504 instead of scanning forever.
func (e *Engine) fillContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.WithoutCancel(r.Context()), e.opt.FillTimeout)
}

func (e *Engine) handleCDF(w http.ResponseWriter, r *http.Request) {
	v := e.view(w)
	if v == nil {
		return
	}
	since, until, ok := e.parseWindow(w, r.URL.Query())
	if !ok {
		return
	}
	pred := &colf.Predicate{Since: since, Until: until}
	key := "cdf?" + pred.Key() + "@" + v.fingerprint
	ctx, cancel := e.fillContext(r)
	defer cancel()
	e.serveCached(w, r, key, func() (*response, error) {
		rep, err := e.windowReport(ctx, v, pred)
		if err != nil {
			return nil, err
		}
		body := cdfBody{Snapshot: v.fingerprint}
		if !since.IsZero() {
			body.Since = since.Format(time.RFC3339)
		}
		if !until.IsZero() {
			body.Until = until.Format(time.RFC3339)
		}
		grid := core.DefaultGrid()
		for _, ct := range rep.Continents() {
			d, _ := rep.Dist(ct)
			curve, err := rep.Curve(ct, grid)
			if err != nil {
				return nil, err
			}
			body.Continents = append(body.Continents, cdfDTO{
				Continent: ct.String(), Code: ct.Code(), Samples: d.N(), Curve: curve,
			})
		}
		return jsonResponse(body, v.fingerprint)
	})
}

// windowReport materializes one [since, until) window. The fast path
// composes the published temporal index view: O(log n) pre-merged
// segment nodes plus a batch decode of only the boundary blocks,
// yielding the same sample multiset a scan would — so every rank query
// downstream, and therefore the response bytes, are identical either
// way. Without an index view (disabled, invalidated, or its query
// failed) the window falls back to the predicate-pushdown block scan.
// A deadline expiry counts a fill timeout and propagates — the
// fallback scan would blow the same deadline.
func (e *Engine) windowReport(ctx context.Context, v *snapshotView, pred *colf.Predicate) (*core.CDFReport, error) {
	m := e.opt.Metrics.nilSafe()
	if v.tixView != nil {
		res, err := v.tixView.Query(ctx, e.f, v.blocks, pred.Since, pred.Until, e.idx)
		if err == nil {
			m.WindowIndexQueries.Inc()
			m.WindowIndexNodes.Add(uint64(res.Stats.Nodes))
			m.WindowIndexEdgeBlocks.Add(uint64(res.Stats.EdgeBlocks))
			rep := core.CDFReportFromDists(res.ByContinent)
			// The composed curve counts make /cdf rendering O(grid) per
			// continent — the samples are never swept on this path.
			rep.SetCurves(tix.Grid(), res.Curves())
			return rep, nil
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			m.FillTimeouts.Inc()
			return nil, err
		}
		m.WindowIndexFallbacks.Inc()
		e.opt.Log.Warn("temporal index query failed; falling back to scan", "error", err)
	}
	rep, err := e.windowCDF(ctx, v, pred)
	if err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		m.FillTimeouts.Inc()
	}
	return rep, err
}

// windowCDF runs the one request-path scan the serving layer allows: a
// predicate-pushdown pass over the published snapshot's block list.
// Zone maps skip blocks wholly outside the window, so the cost tracks
// the window size, not the store size.
func (e *Engine) windowCDF(ctx context.Context, v *snapshotView, pred *colf.Predicate) (*core.CDFReport, error) {
	e.opt.Metrics.nilSafe().RequestScans.Inc()
	var passes []*core.WindowCDFPass
	cfg := scan.Config{
		Workers:   e.opt.Workers,
		Predicate: pred,
		Metrics:   e.opt.ScanMetrics,
		Log:       e.opt.Log,
		NewPasses: func(worker int) ([]scan.Pass, error) {
			p := core.NewWindowCDFPass(e.idx)
			passes = append(passes, p)
			return []scan.Pass{p}, nil
		},
	}
	size := blockEnd(v.blocks)
	if _, err := scan.Blocks(ctx, cfg, e.f, size, v.blocks, 0, colf.HeaderSize); err != nil {
		return nil, err
	}
	// The scan merged every worker into the worker-0 pass.
	return passes[0].Report()
}
