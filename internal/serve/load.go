package serve

import (
	"math"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"
)

// LoadOptions configures one closed-loop load scenario: Workers
// goroutines each drive the handler as fast as responses come back
// (closed loop — no open-loop arrival schedule to mask queueing),
// cycling through Paths, for Duration.
type LoadOptions struct {
	// Workers is the concurrent client count; values < 1 use
	// GOMAXPROCS.
	Workers int
	// Duration is how long the scenario runs; zero means one second.
	Duration time.Duration
	// Paths are the request targets, e.g. "/api/v1/figures/5"; each
	// worker cycles through them in order, offset by its index.
	Paths []string
}

// LoadResult is one scenario's measurement: sustained throughput and
// the latency distribution of every completed request.
type LoadResult struct {
	Scenario string  `json:"scenario"`
	Workers  int     `json:"workers"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P99us    float64 `json:"p99_us"`
	P999us   float64 `json:"p999_us"`
}

// discardWriter is the load generator's ResponseWriter: it counts the
// status and drops the body, so measured latency is handler time, not
// buffer management.
type discardWriter struct {
	h      http.Header
	status int
}

func (d *discardWriter) Header() http.Header { return d.h }

func (d *discardWriter) WriteHeader(c int) { d.status = c }

func (d *discardWriter) Write(p []byte) (int, error) {
	if d.status == 0 {
		d.status = http.StatusOK
	}
	return len(p), nil
}

// RunLoad drives h closed-loop and reports sustained QPS with
// p50/p99/p999 latency over every completed request. Responses with a
// status ≥ 400 count as errors (304 is a success: conditional requests
// are part of the workload).
func RunLoad(name string, h http.Handler, opt LoadOptions) LoadResult {
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	dur := opt.Duration
	if dur <= 0 {
		dur = time.Second
	}

	type tally struct {
		lat  []float64 // microseconds
		errs int
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// Requests parse once; the handlers never mutate them.
			reqs := make([]*http.Request, len(opt.Paths))
			for i, p := range opt.Paths {
				r, err := http.NewRequest(http.MethodGet, p, nil)
				if err != nil {
					panic("serve: bad load path " + p + ": " + err.Error())
				}
				reqs[i] = r
			}
			t := &tallies[wi]
			for i := wi; ; i++ {
				if time.Now().After(deadline) {
					return
				}
				w := &discardWriter{h: make(http.Header)}
				t0 := time.Now()
				h.ServeHTTP(w, reqs[i%len(reqs)])
				t.lat = append(t.lat, float64(time.Since(t0).Nanoseconds())/1e3)
				if w.status >= 400 {
					t.errs++
				}
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	res := LoadResult{Scenario: name, Workers: workers, Seconds: elapsed.Seconds()}
	for i := range tallies {
		all = append(all, tallies[i].lat...)
		res.Errors += tallies[i].errs
	}
	res.Requests = len(all)
	if elapsed > 0 {
		res.QPS = float64(len(all)) / elapsed.Seconds()
	}
	sort.Float64s(all)
	res.P50us = percentile(all, 0.50)
	res.P99us = percentile(all, 0.99)
	res.P999us = percentile(all, 0.999)
	return res
}

// percentile reads the q-th quantile of sorted by the nearest-rank
// method.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
