package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheCoalesce(t *testing.T) {
	c := newCache()
	block := make(chan struct{})
	var fills atomic.Int32
	fill := func() (*response, error) {
		fills.Add(1)
		<-block
		return &response{status: 200, body: []byte("x")}, nil
	}

	// Leader enters the fill and blocks; followers must wait on it, not
	// run their own.
	var wg sync.WaitGroup
	var waitedCount atomic.Int32
	started := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		resp, err, hit, waited := c.do("k", fill)
		if err != nil || hit || waited || string(resp.body) != "x" {
			t.Errorf("leader: resp=%v err=%v hit=%v waited=%v", resp, err, hit, waited)
		}
	}()
	<-started
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err, hit, waited := c.do("k", fill)
			if err != nil || string(resp.body) != "x" {
				t.Errorf("follower: resp=%v err=%v", resp, err)
			}
			if waited && !hit {
				waitedCount.Add(1)
			}
		}()
	}
	close(block)
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want 1", got)
	}

	// Settled entry: a plain hit, no new fill.
	_, err, hit, _ := c.do("k", fill)
	if err != nil || !hit {
		t.Fatalf("after settle: err=%v hit=%v", err, hit)
	}
	if got := fills.Load(); got != 1 {
		t.Fatalf("settled hit re-ran fill (%d)", got)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newCache()
	boom := errors.New("boom")
	calls := 0
	if _, err, _, _ := c.do("k", func() (*response, error) { calls++; return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	resp, err, hit, _ := c.do("k", func() (*response, error) { calls++; return &response{body: []byte("ok")}, nil })
	if err != nil || hit || string(resp.body) != "ok" {
		t.Fatalf("retry after error: resp=%v err=%v hit=%v", resp, err, hit)
	}
	if calls != 2 {
		t.Fatalf("fill calls = %d, want 2 (errors must not cache)", calls)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newCache()
	calls := 0
	fill := func() (*response, error) { calls++; return &response{body: []byte("v")}, nil }
	c.do("k", fill)
	if _, _, hit, _ := c.do("k", fill); !hit {
		t.Fatal("want hit before invalidation")
	}
	c.invalidate()
	if _, _, hit, _ := c.do("k", fill); hit {
		t.Fatal("hit after invalidation")
	}
	if calls != 2 {
		t.Fatalf("fill calls = %d, want 2", calls)
	}
}
