package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colf"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/scan"
	"repro/internal/snap"
	"repro/internal/tix"
)

// BinWidth is the Figure 7 bin geometry the serving layer analyzes
// with — the same one the figures CLI uses, so snapshots written by
// either side seed the other and served bytes match offline renders.
const BinWidth = 7 * 24 * time.Hour

// DefaultRefresh is the refresher's poll interval when Options.Refresh
// is zero.
const DefaultRefresh = 500 * time.Millisecond

// DefaultFillTimeout caps one cache fill (a windowed materialization)
// when Options.FillTimeout is zero. Fills run outside the request's
// cancellation scope so an aborting leader cannot poison coalesced
// waiters — the deadline is what keeps that decoupling from turning
// into an unbounded background scan.
const DefaultFillTimeout = 30 * time.Second

// Options configures an Engine.
type Options struct {
	// Workers is the scan worker count for refresh and /cdf scans;
	// values < 1 use GOMAXPROCS.
	Workers int
	// Refresh is the poll interval between refresh passes; zero means
	// DefaultRefresh.
	Refresh time.Duration
	// SnapshotPath, when set, seeds the resident state from a snapshot
	// file (normally store.SnapshotPath()); serving never writes it.
	SnapshotPath string
	// TixPath, when set, maintains the temporal aggregate index at that
	// path (normally store.TixPath()): the refresher extends it as
	// blocks seal and windowed queries compose pre-merged segment nodes
	// instead of scanning. Empty disables the index; an index that
	// fails to open or extend logs and serves by scan.
	TixPath string
	// FillTimeout is the hard deadline on one cache fill; zero means
	// DefaultFillTimeout.
	FillTimeout time.Duration
	// Metrics, ScanMetrics and SnapMetrics receive the serve_*, scan_*
	// and snap_* instruments; any nil disables that set.
	Metrics     *Metrics
	ScanMetrics *scan.Metrics
	SnapMetrics *snap.Metrics
	// Log, when set, receives serving lifecycle events.
	Log *obs.Logger
}

// snapshotView is one published, immutable serving state: the figure
// report and pre-rendered figure payloads at a covered boundary, plus
// the block list backing windowed scans. Readers load it through one
// atomic pointer and never see it change; the refresher swaps in a
// successor and leaves old views to their in-flight readers.
type snapshotView struct {
	fingerprint   string
	coveredBytes  int64
	coveredBlocks int
	samples       uint64
	rep           *core.SuiteReport
	figures       map[string]*response
	blocks        []colf.BlockInfo
	// tixView is the temporal index state published with this view; nil
	// when the index is disabled or unavailable, in which case windowed
	// queries scan the block list instead.
	tixView   *tix.View
	published time.Time
}

// Engine is the query serving engine: a resident HotSuite advanced by a
// background refresher, an atomically published snapshotView, and the
// read cache in front of the HTTP handlers.
type Engine struct {
	store *results.Store
	idx   *core.Index
	opt   Options

	f *os.File // long-lived samples handle; ReadAt-shared by all scans

	// Refresher-owned state, serialized by refreshMu (the background
	// loop and any test-driven RefreshNow).
	refreshMu sync.Mutex
	hot       *core.HotSuite
	blocks    []colf.BlockInfo // every complete block folded so far
	tix       *tix.Index       // temporal aggregate index; nil when disabled

	cur   atomic.Pointer[snapshotView]
	lag   atomic.Int64 // stable bytes past the published boundary
	cache *cache
	// bypassCache routes every request straight to its fill function —
	// the no-cache baseline the load benchmark measures against.
	bypassCache atomic.Bool

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewEngine builds the serving engine over an opened binary store. The
// resident state seeds from Options.SnapshotPath when it validates and
// the store prefix is walked once to recover the block list; no
// snapshot is published until the first Refresh.
func NewEngine(store *results.Store, idx *core.Index, opt Options) (*Engine, error) {
	if store == nil || idx == nil {
		return nil, errors.New("serve: nil store or index")
	}
	if opt.Refresh <= 0 {
		opt.Refresh = DefaultRefresh
	}
	if opt.FillTimeout <= 0 {
		opt.FillTimeout = DefaultFillTimeout
	}
	hot, err := core.NewHotSuite(store, idx, store.Meta().Start, BinWidth, core.SnapshotOptions{
		Path:    opt.SnapshotPath,
		Metrics: opt.SnapMetrics,
		Log:     opt.Log,
	})
	if err != nil {
		return nil, err
	}
	f, err := os.Open(store.SamplesPath())
	if err != nil {
		return nil, err
	}
	e := &Engine{
		store: store, idx: idx, opt: opt,
		f: f, hot: hot, cache: newCache(),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	// Recover the full block list once: the covered prefix (needed for
	// windowed scans) plus whatever is already stable past it.
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var allBlocks []colf.BlockInfo
	if fi.Size() > colf.HeaderSize {
		covered, _ := hot.Covered()
		blocks, _, err := colf.DeltaBlocksAvailable(f, fi.Size(), colf.HeaderSize)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("serve: indexing store: %w", err)
		}
		allBlocks = blocks
		// Keep only the snapshot-covered prefix; Refresh folds the rest,
		// appending to this list as it goes.
		n := sort.Search(len(blocks), func(i int) bool { return blocks[i].Off >= covered })
		if n < len(blocks) && blocks[n].Off != covered || n == len(blocks) && covered > blockEnd(blocks) {
			f.Close()
			return nil, fmt.Errorf("serve: snapshot boundary %d is not a block boundary", covered)
		}
		e.blocks = blocks[:n:n]
	}
	if opt.TixPath != "" {
		// Validate against every stable complete block, not just the
		// snapshot-covered prefix — an index built offline (shears) may
		// already cover blocks the resident suite has not folded yet.
		ti, err := tix.Open(opt.TixPath, tix.Binding{
			PassSet: tix.PassSetCDF,
			Index:   idx.Fingerprint(),
			Meta:    core.MetaFingerprint(store.Meta()),
		}, allBlocks, opt.Log)
		if err != nil {
			// The index is an accelerator: serving must come up without it.
			opt.Log.Warn("temporal index unavailable; windowed queries will scan",
				"path", opt.TixPath, "error", err)
		} else {
			e.tix = ti
		}
	}
	return e, nil
}

func blockEnd(blocks []colf.BlockInfo) int64 {
	if len(blocks) == 0 {
		return colf.HeaderSize
	}
	last := blocks[len(blocks)-1]
	return last.Off + last.Len
}

// Start launches the background refresher. It runs one synchronous
// refresh first, so a store with data serves from the very first
// request after Start returns.
func (e *Engine) Start(ctx context.Context) {
	if err := e.Refresh(ctx); err != nil {
		e.opt.Metrics.nilSafe().RefreshErrors.Inc()
		e.opt.Log.Warn("initial refresh failed", "error", err)
	}
	e.started.Store(true)
	go e.run(ctx)
}

// run is the refresher loop: poll, advance, publish, until Close.
func (e *Engine) run(ctx context.Context) {
	defer close(e.done)
	t := time.NewTicker(e.opt.Refresh)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			if err := e.Refresh(ctx); err != nil {
				e.opt.Metrics.nilSafe().RefreshErrors.Inc()
				e.opt.Log.Warn("refresh failed", "error", err)
			}
		}
	}
}

// nilSafe lets engine internals touch metric fields without guarding.
func (m *Metrics) nilSafe() *Metrics {
	if m == nil {
		return &Metrics{}
	}
	return m
}

// Refresh runs one refresh pass: locate the stable delta, fold it into
// the resident state, and publish a new snapshot view with re-rendered
// figures. A pass with no new complete blocks republishes nothing (the
// cache stays warm). Errors leave the previous view serving.
func (e *Engine) Refresh(ctx context.Context) error {
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	m := e.opt.Metrics.nilSafe()
	t0 := time.Now()

	fi, err := e.f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	covered, _ := e.hot.Covered()
	if size > covered {
		delta, stableEnd, err := colf.DeltaBlocksAvailable(e.f, size, covered)
		if err != nil {
			return err
		}
		// Publish the gap before folding: if the fold fails, the lag
		// stands and readers count as stale-served until it clears.
		e.lag.Store(stableEnd - covered)
		m.RefreshLagBytes.Set(float64(stableEnd - covered))
		if len(delta) > 0 {
			st, err := e.hot.Advance(ctx, e.f, size, delta, stableEnd, scan.Config{
				Workers: e.opt.Workers,
				Metrics: e.opt.ScanMetrics,
				Log:     e.opt.Log,
			})
			if err != nil {
				return err
			}
			e.blocks = append(e.blocks, delta...)
			e.opt.Log.Debug("serving state advanced",
				"delta_blocks", len(delta), "delta_samples", st.Samples,
				"covered_bytes", stableEnd)
		}
	}

	covered, coveredBlocks := e.hot.Covered()
	e.lag.Store(0) // everything stable is folded; only a torn tail remains
	m.RefreshLagBytes.Set(0)

	cur := e.cur.Load()
	if cur != nil && cur.coveredBytes == covered {
		return nil // nothing new: keep the view and its warm cache
	}
	if e.hot.Samples() == 0 {
		return nil // nothing to serve yet
	}

	rep, err := e.hot.Report()
	if err != nil {
		return err
	}
	figs, err := renderFigures(rep)
	if err != nil {
		return err
	}
	// The report still aliases the resident suite's accumulators, which
	// the next Advance mutates. Freeze the two reports the request path
	// reads after publish (quantile queries); figures are already frozen
	// as rendered bytes.
	rep.MinRTT = rep.MinRTT.Clone()
	rep.FullDist = rep.FullDist.Clone()
	head, tail, err := snap.WindowCRCs(e.f, covered)
	if err != nil {
		return err
	}
	// Bring the temporal index up to the blocks this view serves, then
	// publish its directory with the view. An extend failure downgrades
	// windowed queries to scans — never a stale or wrong index answer.
	var tixView *tix.View
	if e.tix != nil {
		if err := e.tix.Extend(e.f, e.blocks, e.idx); err != nil {
			e.opt.Log.Warn("temporal index extend failed; windowed queries will scan", "error", err)
		} else {
			tixView = e.tix.View()
		}
	}
	view := &snapshotView{
		fingerprint:   snap.Fingerprint(covered, e.hot.Samples(), head, tail),
		coveredBytes:  covered,
		coveredBlocks: coveredBlocks,
		samples:       e.hot.Samples(),
		rep:           rep,
		figures:       figs,
		blocks:        e.blocks[:len(e.blocks):len(e.blocks)],
		tixView:       tixView,
		published:     time.Now(),
	}
	for _, r := range view.figures {
		r.etag = etagFor(view.fingerprint)
	}
	e.cur.Store(view)
	e.cache.invalidate()
	m.Refreshes.Inc()
	m.RefreshSeconds.Observe(time.Since(t0).Seconds())
	m.CoveredBytes.Set(float64(covered))
	m.CoveredBlocks.Set(float64(coveredBlocks))
	m.Samples.Set(float64(view.samples))
	e.opt.Log.Info("snapshot published",
		"fingerprint", view.fingerprint, "covered_bytes", covered,
		"covered_blocks", coveredBlocks, "samples", view.samples)
	return nil
}

// renderFigures renders every served figure once, at publish time.
// Rendering is also what freezes the report: the CDF marks materialize
// and sort every distribution the quantile endpoint later queries, so
// request-path reads are strictly read-only.
func renderFigures(rep *core.SuiteReport) (map[string]*response, error) {
	out := make(map[string]*response, 4)
	put := func(fig string, lines []string) {
		out[fig] = &response{
			status:      200,
			contentType: "text/plain; charset=utf-8",
			body:        []byte(strings.Join(lines, "\n") + "\n"),
		}
	}
	put("4", figures.Figure4Lines(rep.Proximity))
	l5, err := figures.CDFLines(rep.MinRTT)
	if err != nil {
		return nil, err
	}
	put("5", l5)
	l6, err := figures.CDFLines(rep.FullDist)
	if err != nil {
		return nil, err
	}
	put("6", l6)
	l7, err := figures.Figure7Lines(rep.LastMile)
	if err != nil {
		return nil, err
	}
	put("7", l7)
	return out, nil
}

func etagFor(fingerprint string) string { return `"` + fingerprint + `"` }

// SetCacheBypass toggles the read cache off (true) or on. It exists
// for the load benchmark's no-cache baseline and for tests; production
// serving always runs with the cache on.
func (e *Engine) SetCacheBypass(v bool) { e.bypassCache.Store(v) }

// Close stops the refresher and releases the store handle. Safe to call
// without Start (the refresher simply never ran).
func (e *Engine) Close() error {
	e.stopOnce.Do(func() { close(e.stop) })
	if e.started.Load() {
		select {
		case <-e.done:
		case <-time.After(5 * time.Second):
		}
	}
	if e.tix != nil {
		e.tix.Close()
	}
	return e.f.Close()
}

// Status is the serving slice of /api/v1/status.
type Status struct {
	// Snapshot is the published snapshot's fingerprint; empty until the
	// first publish.
	Snapshot      string    `json:"snapshot,omitempty"`
	CoveredBytes  int64     `json:"covered_bytes"`
	CoveredBlocks int       `json:"covered_blocks"`
	Samples       uint64    `json:"samples"`
	LagBytes      int64     `json:"refresh_lag_bytes"`
	PublishedAt   time.Time `json:"published_at"`
}

// Status reports the published snapshot's coverage.
func (e *Engine) Status() Status {
	v := e.cur.Load()
	if v == nil {
		return Status{LagBytes: e.lag.Load()}
	}
	return Status{
		Snapshot:      v.fingerprint,
		CoveredBytes:  v.coveredBytes,
		CoveredBlocks: v.coveredBlocks,
		Samples:       v.samples,
		LagBytes:      e.lag.Load(),
		PublishedAt:   v.published,
	}
}
