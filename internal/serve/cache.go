package serve

import (
	"hash/fnv"
	"sync"
)

// response is one finished HTTP payload, immutable once stored: every
// reader serves the same bytes, so a cached figure is byte-identical
// across hits by construction.
type response struct {
	status      int
	contentType string
	etag        string
	body        []byte
}

// cacheShards keeps lock contention off the hot path: a request only
// contends with requests whose keys hash to the same shard.
const cacheShards = 16

// cache is the sharded read cache with singleflight coalescing. Keys
// embed the snapshot fingerprint, so an entry can never serve bytes
// from a different snapshot than its key names; invalidation on
// snapshot advance exists to bound memory and re-arm coalescing, not
// for correctness.
type cache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

// cacheEntry is one computation's lifecycle. done closes when the
// leader finishes; resp/err are written exactly once before that.
type cacheEntry struct {
	done chan struct{}
	resp *response
	err  error
}

func newCache() *cache {
	c := &cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

func (c *cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

// do returns the cached response for key, computing it via fill on a
// miss. Exactly one caller per key runs fill at a time; the others wait
// for its result (coalescing). A failed fill is forgotten, so the next
// request retries instead of caching the error. The hit return
// distinguishes a finished entry (true) from having led or waited on a
// fill; waited reports a coalesced wait.
func (c *cache) do(key string, fill func() (*response, error)) (resp *response, err error, hit, waited bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
			// Finished entry: a plain hit.
			return e.resp, e.err, true, false
		default:
			<-e.done
			return e.resp, e.err, false, true
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()

	e.resp, e.err = fill()
	close(e.done)
	if e.err != nil {
		sh.mu.Lock()
		// Only forget our own failed entry — an invalidation may already
		// have replaced it.
		if sh.m[key] == e {
			delete(sh.m, key)
		}
		sh.mu.Unlock()
	}
	return e.resp, e.err, false, false
}

// invalidate drops every finished and future entry, called when the
// published snapshot advances. In-flight fills are left to complete
// against their (now unreachable) entries; their waiters still get the
// old snapshot's bytes, which the keyed fingerprint makes explicit.
func (c *cache) invalidate() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]*cacheEntry)
		sh.mu.Unlock()
	}
}
