package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestBuildServesAPI(t *testing.T) {
	h, err := build(200, 1, 0.01, "demo=500,other=100", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/v1/regions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("regions = %d", resp.StatusCode)
	}
	var regions []struct {
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&regions); err != nil {
		t.Fatal(err)
	}
	if len(regions) != 101 {
		t.Errorf("%d regions served", len(regions))
	}

	// Grants were applied.
	credResp, err := http.Get(ts.URL + "/api/v1/credits/demo")
	if err != nil {
		t.Fatal(err)
	}
	defer credResp.Body.Close()
	var cred struct {
		Balance int64 `json:"balance"`
	}
	if err := json.NewDecoder(credResp.Body).Decode(&cred); err != nil {
		t.Fatal(err)
	}
	if cred.Balance != 500 {
		t.Errorf("demo balance = %d", cred.Balance)
	}
}

func TestBuildRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name   string
		probes int
		scale  float64
		grants string
	}{
		{"zero probes", 0, 0.01, ""},
		{"bad scale", 200, 0, ""},
		{"malformed grant", 200, 0.01, "justaname"},
		{"bad amount", 200, 0.01, "demo=abc"},
		{"negative grant", 200, 0.01, "demo=-5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := build(tc.probes, 1, tc.scale, tc.grants, nil, nil); err == nil {
				t.Error("invalid configuration accepted")
			}
		})
	}
}

func TestBuildEmptyGrantListOK(t *testing.T) {
	if _, err := build(200, 1, 0.01, "", nil, nil); err != nil {
		t.Errorf("empty grants rejected: %v", err)
	}
}

func TestBuildServesTelemetry(t *testing.T) {
	app, err := build(200, 1, 0.01, "demo=500", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer app.live.Close()
	ts := httptest.NewServer(app)
	defer ts.Close()

	// Prometheus exposition is live from the start.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"# TYPE atlas_credits_granted_total counter",
		"atlas_credits_granted_total 500",
		"# TYPE ping_timeouts_total counter",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The status snapshot reflects the built world.
	stResp, err := http.Get(ts.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	var st struct {
		Probes  int     `json:"probes"`
		Regions int     `json:"regions"`
		Uptime  float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Probes != 200 || st.Regions != 101 {
		t.Errorf("status census = %+v", st)
	}
}

func TestGracefulShutdown(t *testing.T) {
	app, err := build(200, 1, 0.01, "demo=500", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(app)
	// Request, then shut down the way serve() does: HTTP drain first,
	// then the live service; final telemetry must not panic.
	if resp, err := http.Get(srv.URL + "/api/v1/regions"); err == nil {
		resp.Body.Close()
	}
	srv.Close()
	app.live.Close()
	logFinal(app.metrics, app.log)
	if got := app.metrics.ReqTotal.Sum(); got != 1 {
		t.Errorf("final request count = %d, want 1", got)
	}
}

// TestBuildServesFlightRecorder wires a logger-backed recorder through
// build the way main does: the build-time events must come back out of
// GET /debug/events.
func TestBuildServesFlightRecorder(t *testing.T) {
	rec := obs.NewRecorder(flightRecorderSize)
	logger := obs.NewLogger(io.Discard, obs.WithRecorder(rec)).With("atlasd")
	app, err := build(200, 1, 0.01, "demo=500", logger, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer app.live.Close()
	ts := httptest.NewServer(app)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events = %d", resp.StatusCode)
	}
	var d struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Component string `json:"component"`
			Msg       string `json:"msg"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Total == 0 {
		t.Fatal("flight recorder is empty after build")
	}
	seen := map[string]bool{}
	for _, e := range d.Events {
		if e.Component == "atlasd" {
			seen[e.Msg] = true
		}
	}
	for _, want := range []string{"credits granted", "world built"} {
		if !seen[want] {
			t.Errorf("/debug/events lacks %q; has %v", want, seen)
		}
	}
}
