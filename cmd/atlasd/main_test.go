package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestBuildServesAPI(t *testing.T) {
	h, err := build(200, 1, 0.01, "demo=500,other=100")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/v1/regions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("regions = %d", resp.StatusCode)
	}
	var regions []struct {
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&regions); err != nil {
		t.Fatal(err)
	}
	if len(regions) != 101 {
		t.Errorf("%d regions served", len(regions))
	}

	// Grants were applied.
	credResp, err := http.Get(ts.URL + "/api/v1/credits/demo")
	if err != nil {
		t.Fatal(err)
	}
	defer credResp.Body.Close()
	var cred struct {
		Balance int64 `json:"balance"`
	}
	if err := json.NewDecoder(credResp.Body).Decode(&cred); err != nil {
		t.Fatal(err)
	}
	if cred.Balance != 500 {
		t.Errorf("demo balance = %d", cred.Balance)
	}
}

func TestBuildRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name   string
		probes int
		scale  float64
		grants string
	}{
		{"zero probes", 0, 0.01, ""},
		{"bad scale", 200, 0, ""},
		{"malformed grant", 200, 0.01, "justaname"},
		{"bad amount", 200, 0.01, "demo=abc"},
		{"negative grant", 200, 0.01, "demo=-5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := build(tc.probes, 1, tc.scale, tc.grants); err == nil {
				t.Error("invalid configuration accepted")
			}
		})
	}
}

func TestBuildEmptyGrantListOK(t *testing.T) {
	if _, err := build(200, 1, 0.01, ""); err != nil {
		t.Errorf("empty grants rejected: %v", err)
	}
}
