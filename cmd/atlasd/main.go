// Command atlasd runs the measurement platform server: the RIPE-Atlas-like
// HTTP API over the simulated probe fleet and cloud regions. Live
// measurements traverse the full echo/ping stack over the virtual network.
//
// Usage:
//
//	atlasd -addr :8080 -probes 800 -grant demo=100000 -scale 0.01
//
// Then, e.g.:
//
//	curl 'http://localhost:8080/api/v1/probes?country=DE&tag=wifi&limit=3'
//	curl 'http://localhost:8080/api/v1/regions'
//	curl 'http://localhost:8080/api/v1/status'     # platform snapshot
//	curl 'http://localhost:8080/metrics'           # Prometheus exposition
//	curl 'http://localhost:8080/debug/events'      # flight-recorder dump
//
// -cluster-out DIR additionally embeds a campaign coordinator
// (internal/cluster): the cluster control-plane endpoints are served
// under /api/v1/cluster/ on the same listener, worker agents
// (cmd/agent) register and lease shards against this server, and the
// merged dataset grows in DIR — byte-identical to a single-process
// shears run. The coordinator checkpoints its merge watermark into
// DIR/checkpoint.json and auto-resumes from it on restart, so killing
// and restarting atlasd mid-campaign loses nothing durable.
// -cluster-shards and -cluster-days shape the campaign plan.
//
// -serve-data DIR mounts the hot-path analysis API over the dataset in
// DIR: a decoded suite stays resident in memory, advanced incrementally
// as the dataset appends, so queries never re-scan the store:
//
//	curl 'http://localhost:8080/api/v1/figures/4'             # pre-rendered figure JSON
//	curl 'http://localhost:8080/api/v1/quantile?p=0.5'        # per-continent medians
//	curl 'http://localhost:8080/api/v1/cdf?since=2019-09-01T00:00:00Z&until=2019-09-08T00:00:00Z'
//
// Responses carry snapshot-scoped ETags; If-None-Match returns 304.
// Pointing -serve-data at the -cluster-out directory serves live
// results while the campaign is still merging.
//
// The server logs structured leveled events (-log-format text|json,
// -log-level) and keeps the most recent ones in an in-memory flight
// recorder served at /debug/events. -debug addr serves net/http/pprof on
// a separate listener (opt-in, keep it off public interfaces).
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests
// finish, running measurements settle, and a final metrics summary is
// logged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/atlas"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/scan"
	"repro/internal/serve"
	"repro/internal/snap"
	"repro/internal/world"
)

// flightRecorderSize is how many recent log events /debug/events retains.
const flightRecorderSize = 256

func main() {
	log.SetFlags(0)
	log.SetPrefix("atlasd: ")
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address")
		probes        = flag.Int("probes", 800, "probe census size")
		seed          = flag.Uint64("seed", 1, "world seed")
		scale         = flag.Float64("scale", 0.01, "time compression for live pings (0,1]")
		grant         = flag.String("grant", "demo=100000", "comma-separated account=credits grants")
		debug         = flag.String("debug", "", "serve net/http/pprof on this address (opt-in)")
		clusterOut    = flag.String("cluster-out", "", "embed a campaign coordinator writing the merged dataset into this directory")
		clusterShards = flag.Int("cluster-shards", 0, "cluster partition width (0 = default; output is identical for any value)")
		clusterDays   = flag.Int("cluster-days", 0, "override the cluster campaign length in days (0 = config default)")
		serveData     = flag.String("serve-data", "", "serve the analysis API (figures, quantile, cdf) from this dataset directory")
		serveRefresh  = flag.Duration("serve-refresh", serve.DefaultRefresh, "snapshot refresh poll interval for -serve-data")
		logFormat     = flag.String("log-format", "text", "structured log encoding: text (logfmt) or json")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	format, err := obs.ParseLogFormat(*logFormat)
	if err != nil {
		log.Fatal(err)
	}
	rec := obs.NewRecorder(flightRecorderSize)
	logger := obs.NewLogger(os.Stderr,
		obs.WithLogFormat(format), obs.WithLogLevel(level), obs.WithRecorder(rec),
	).With("atlasd")
	app, err := build(*probes, *seed, *scale, *grant, logger, rec)
	if err != nil {
		log.Fatal(err)
	}
	if *clusterOut != "" {
		if err := app.enableCluster(clusterOptions{
			out: *clusterOut, shards: *clusterShards, days: *clusterDays,
			seed: *seed, probes: *probes,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if *serveData != "" {
		if err := app.enableServing(*serveData, *serveRefresh); err != nil {
			log.Fatal(err)
		}
	}
	if err := serveApp(app, *addr, *debug); err != nil {
		log.Fatal(err)
	}
}

// app bundles the built platform server with the pieces shutdown and
// telemetry need after construction.
type app struct {
	srv       *atlas.Server
	live      *atlas.LiveService
	registry  *obs.Registry
	metrics   *atlas.Metrics
	log       *obs.Logger
	world     *world.World
	worldSeed uint64

	// Cluster coordinator pieces, set when -cluster-out is given.
	cluster     http.Handler
	coordinator *cluster.Coordinator
	clusterSink *results.Sink

	// Query serving pieces, set when -serve-data is given.
	serveEngine *serve.Engine
	serveAPI    http.Handler
}

// ServeHTTP routes cluster control-plane requests to the embedded
// coordinator, analysis queries to the serving engine, and everything
// else to the platform API server.
func (a *app) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if a.cluster != nil && strings.HasPrefix(r.URL.Path, "/api/v1/cluster/") {
		a.cluster.ServeHTTP(w, r)
		return
	}
	if a.serveAPI != nil && (strings.HasPrefix(r.URL.Path, "/api/v1/figures/") ||
		r.URL.Path == "/api/v1/quantile" || r.URL.Path == "/api/v1/cdf") {
		a.serveAPI.ServeHTTP(w, r)
		return
	}
	a.srv.ServeHTTP(w, r)
}

func build(probes int, seed uint64, scale float64, grants string, logger *obs.Logger, rec *obs.Recorder) (*app, error) {
	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	registry := obs.NewRegistry()
	metrics := atlas.NewMetrics(registry)
	w.Platform.Metrics = metrics
	ledger := atlas.NewLedger()
	ledger.Instrument(metrics)
	for _, g := range strings.Split(grants, ",") {
		if g == "" {
			continue
		}
		account, amount, ok := strings.Cut(g, "=")
		if !ok {
			return nil, fmt.Errorf("bad grant %q, want account=credits", g)
		}
		credits, err := strconv.ParseInt(amount, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad credit amount in %q: %v", g, err)
		}
		if err := ledger.Grant(account, credits); err != nil {
			return nil, err
		}
		logger.Info("credits granted", "account", account, "credits", credits)
	}
	live, err := atlas.NewLiveService(w.Platform, ledger, scale, atlas.WithLiveMetrics(metrics))
	if err != nil {
		return nil, err
	}
	a := &app{live: live, registry: registry, metrics: metrics, log: logger, world: w, worldSeed: seed}
	srv, err := atlas.NewServer(w.Platform, ledger, live,
		atlas.WithServerMetrics(metrics), atlas.WithServerEvents(rec),
		atlas.WithServerServing(a.servingStatus))
	if err != nil {
		return nil, err
	}
	a.srv = srv
	logger.Info("world built", "probes", w.Probes.Len(), "regions", w.Catalog.Len(), "seed", seed)
	return a, nil
}

// servingStatus feeds /api/v1/status the serving engine's snapshot
// coverage; nil (omitted from the JSON) when -serve-data is off.
func (a *app) servingStatus() any {
	if a.serveEngine == nil {
		return nil
	}
	return a.serveEngine.Status()
}

// enableServing mounts the hot-path analysis API over the dataset in
// dir: a resident decoded suite, advanced by a background refresher,
// answers figure/quantile/cdf queries without cold scans. The dataset
// may still be growing — e.g. -cluster-out pointing at the same
// directory — in which case served results track the appending tail.
func (a *app) enableServing(dir string, refresh time.Duration) error {
	store, err := results.Open(dir)
	if err != nil {
		return err
	}
	meta := store.Meta()
	if meta.Seed != 0 && meta.Probes != 0 &&
		(meta.Seed != a.worldSeed || meta.Probes != a.world.Probes.Len()) {
		return fmt.Errorf("dataset %s was captured with seed=%d probes=%d; restart atlasd with matching -seed/-probes (got seed=%d probes=%d)",
			dir, meta.Seed, meta.Probes, a.worldSeed, a.world.Probes.Len())
	}
	logger := a.log.With("serve")
	eng, err := serve.NewEngine(store, a.world.Index, serve.Options{
		Refresh:      refresh,
		SnapshotPath: store.SnapshotPath(),
		TixPath:      store.TixPath(),
		Metrics:      serve.NewMetrics(a.registry),
		ScanMetrics:  scan.NewMetrics(a.registry),
		SnapMetrics:  snap.NewMetrics(a.registry),
		Log:          logger,
	})
	if err != nil {
		return err
	}
	eng.Start(context.Background())
	a.serveEngine = eng
	a.serveAPI = eng.Handler()
	st := eng.Status()
	logger.Info("serving enabled",
		"dir", dir, "refresh", refresh,
		"covered_bytes", st.CoveredBytes, "samples", st.Samples)
	return nil
}

// clusterOptions shape the embedded coordinator's campaign plan.
type clusterOptions struct {
	out    string
	shards int
	days   int
	seed   uint64
	probes int
}

// checkpointFile is the cluster checkpoint's name inside the dataset dir.
const checkpointFile = "checkpoint.json"

// enableCluster embeds a campaign coordinator: it opens (or resumes)
// the merged dataset in opts.out and mounts the cluster control-plane
// endpoints on the server. A checkpoint left by a previous coordinator
// with the same plan fingerprint resumes automatically — the sink is
// truncated to the checkpoint's durable offset and every shard's
// watermark restarts at the merged round, exactly like an engine
// resume.
func (a *app) enableCluster(opts clusterOptions) error {
	w := a.world
	cfg := atlas.TestCampaign()
	if opts.days > 0 {
		cfg.End = cfg.Start.Add(time.Duration(opts.days) * 24 * time.Hour)
	}
	fingerprint := cfg.Fingerprint(opts.seed, w.Probes.Len())
	shards := opts.shards
	if shards <= 0 {
		shards = cluster.DefaultShards
	}
	if p := w.Platform.PublicProbes(); shards > p {
		shards = p
	}
	ckPath := filepath.Join(opts.out, checkpointFile)
	logger := a.log.With("cluster")
	var (
		sink         *results.Sink
		startRound   int
		startSamples uint64
	)
	cp, err := engine.LoadCheckpoint(ckPath)
	switch {
	case err == nil:
		if cp.Fingerprint != fingerprint {
			return fmt.Errorf("checkpoint %s belongs to a different campaign (fingerprint %s, want %s)",
				ckPath, cp.Fingerprint, fingerprint)
		}
		store, oerr := results.Open(opts.out)
		if oerr != nil {
			return oerr
		}
		sink, oerr = store.Resume(cp.SinkOffset)
		if oerr != nil {
			return oerr
		}
		startRound, startSamples = cp.Round+1, cp.Samples
		logger.Info("resuming cluster campaign",
			"rounds_done", startRound, "rounds_total", cfg.Rounds(),
			"samples", startSamples, "sink_offset", cp.SinkOffset)
	case errors.Is(err, engine.ErrNoCheckpoint):
		// No checkpoint plus an existing non-empty dataset means a
		// previous campaign finished and retired its checkpoint. Create
		// would truncate it; refuse instead of destroying a merged run.
		if st, serr := os.Stat(filepath.Join(opts.out, "samples.bin")); serr == nil && st.Size() > 0 {
			return fmt.Errorf("%s holds a completed dataset (no checkpoint to resume); move it aside to start a new campaign", opts.out)
		}
		meta := cfg.Meta(opts.seed, w.Probes.Len(), w.Catalog.Len())
		if _, sink, err = results.Create(opts.out, meta, results.FormatBinary); err != nil {
			return err
		}
	default:
		return err
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Plan: cluster.Plan{
			Fingerprint: fingerprint,
			Seed:        opts.seed,
			Probes:      opts.probes,
			Shards:      shards,
			Rounds:      cfg.Rounds(),
			Campaign:    cfg,
		},
		Sink:           sink.Write,
		Commit:         sink.Commit,
		CheckpointPath: ckPath,
		StartRound:     startRound,
		StartSamples:   startSamples,
		Metrics:        cluster.NewMetrics(a.registry),
		Log:            logger,
	})
	if err != nil {
		sink.Close()
		return err
	}
	// Once every round is merged, make the tail durable and retire the
	// checkpoint so a restart serves the finished dataset instead of
	// re-merging it.
	go func() {
		if coord.Wait(context.Background()) != nil {
			return
		}
		if _, cerr := sink.Commit(); cerr != nil {
			logger.Warn("final commit failed", "error", cerr)
			return
		}
		if rerr := os.Remove(ckPath); rerr != nil && !os.IsNotExist(rerr) {
			logger.Warn("checkpoint removal failed", "error", rerr)
		}
		logger.Info("cluster campaign complete", "samples", coord.Samples(), "out", opts.out)
	}()
	a.cluster = coord.Handler()
	a.coordinator = coord
	a.clusterSink = sink
	logger.Info("coordinator enabled",
		"out", opts.out, "shards", shards, "rounds", cfg.Rounds(),
		"start_round", startRound, "fingerprint", fingerprint)
	return nil
}

// shutdownTimeout bounds how long a graceful shutdown waits for in-flight
// requests and running measurements.
const shutdownTimeout = 10 * time.Second

// serveApp runs the HTTP server (and the optional pprof listener) until
// SIGINT/SIGTERM, then shuts down gracefully.
func serveApp(a *app, addr, debugAddr string) error {
	httpSrv := &http.Server{Addr: addr, Handler: a}
	if debugAddr != "" {
		go serveDebug(debugAddr, a.log)
	}
	errc := make(chan error, 1)
	go func() {
		a.log.Info("listening", "addr", addr)
		errc <- httpSrv.ListenAndServe()
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	a.log.Info("shutting down", "drain_timeout", shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := httpSrv.Shutdown(sctx)
	if errors.Is(err, context.DeadlineExceeded) {
		err = nil // best effort: report the final counters regardless
	}
	// Let running measurement polls settle and flush the last samples.
	a.live.Close()
	// Flush the cluster dataset; an unfinished campaign resumes from the
	// last checkpoint on the next start.
	if a.clusterSink != nil {
		if cerr := a.clusterSink.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	// Stop the serving refresher and release its read handle.
	if a.serveEngine != nil {
		if cerr := a.serveEngine.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	logFinal(a.metrics, a.log)
	return err
}

// logFinal emits the final telemetry summary so a terminated server
// leaves its last counters in the log.
func logFinal(m *atlas.Metrics, logger *obs.Logger) {
	logger.Info("final counters",
		"requests", m.ReqTotal.Sum(),
		"measurements", m.MeasurementsCreated.Value(),
		"done", m.MeasurementsDone.Value(),
		"failed", m.MeasurementsFailed.Value(),
		"stopped", m.MeasurementsStopped.Value(),
		"results", m.ResultsCollected.Value(),
		"ping_timeouts", m.Ping.Timeouts.Value(),
		"credits_spent", m.CreditsSpent.Value())
}

// serveDebug exposes the pprof profiling handlers on their own listener.
func serveDebug(addr string, logger *obs.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "url", "http://"+addr+"/debug/pprof/")
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug server failed", "error", err)
	}
}
