// Command atlasd runs the measurement platform server: the RIPE-Atlas-like
// HTTP API over the simulated probe fleet and cloud regions. Live
// measurements traverse the full echo/ping stack over the virtual network.
//
// Usage:
//
//	atlasd -addr :8080 -probes 800 -grant demo=100000 -scale 0.01
//
// Then, e.g.:
//
//	curl 'http://localhost:8080/api/v1/probes?country=DE&tag=wifi&limit=3'
//	curl 'http://localhost:8080/api/v1/regions'
//	curl 'http://localhost:8080/api/v1/status'     # platform snapshot
//	curl 'http://localhost:8080/metrics'           # Prometheus exposition
//	curl 'http://localhost:8080/debug/events'      # flight-recorder dump
//
// The server logs structured leveled events (-log-format text|json,
// -log-level) and keeps the most recent ones in an in-memory flight
// recorder served at /debug/events. -debug addr serves net/http/pprof on
// a separate listener (opt-in, keep it off public interfaces).
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests
// finish, running measurements settle, and a final metrics summary is
// logged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/atlas"
	"repro/internal/obs"
	"repro/internal/world"
)

// flightRecorderSize is how many recent log events /debug/events retains.
const flightRecorderSize = 256

func main() {
	log.SetFlags(0)
	log.SetPrefix("atlasd: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		probes    = flag.Int("probes", 800, "probe census size")
		seed      = flag.Uint64("seed", 1, "world seed")
		scale     = flag.Float64("scale", 0.01, "time compression for live pings (0,1]")
		grant     = flag.String("grant", "demo=100000", "comma-separated account=credits grants")
		debug     = flag.String("debug", "", "serve net/http/pprof on this address (opt-in)")
		logFormat = flag.String("log-format", "text", "structured log encoding: text (logfmt) or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	format, err := obs.ParseLogFormat(*logFormat)
	if err != nil {
		log.Fatal(err)
	}
	rec := obs.NewRecorder(flightRecorderSize)
	logger := obs.NewLogger(os.Stderr,
		obs.WithLogFormat(format), obs.WithLogLevel(level), obs.WithRecorder(rec),
	).With("atlasd")
	app, err := build(*probes, *seed, *scale, *grant, logger, rec)
	if err != nil {
		log.Fatal(err)
	}
	if err := serve(app, *addr, *debug); err != nil {
		log.Fatal(err)
	}
}

// app bundles the built platform server with the pieces shutdown and
// telemetry need after construction.
type app struct {
	srv      *atlas.Server
	live     *atlas.LiveService
	registry *obs.Registry
	metrics  *atlas.Metrics
	log      *obs.Logger
}

// ServeHTTP delegates to the platform API server.
func (a *app) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.srv.ServeHTTP(w, r) }

func build(probes int, seed uint64, scale float64, grants string, logger *obs.Logger, rec *obs.Recorder) (*app, error) {
	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	registry := obs.NewRegistry()
	metrics := atlas.NewMetrics(registry)
	w.Platform.Metrics = metrics
	ledger := atlas.NewLedger()
	ledger.Instrument(metrics)
	for _, g := range strings.Split(grants, ",") {
		if g == "" {
			continue
		}
		account, amount, ok := strings.Cut(g, "=")
		if !ok {
			return nil, fmt.Errorf("bad grant %q, want account=credits", g)
		}
		credits, err := strconv.ParseInt(amount, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad credit amount in %q: %v", g, err)
		}
		if err := ledger.Grant(account, credits); err != nil {
			return nil, err
		}
		logger.Info("credits granted", "account", account, "credits", credits)
	}
	live, err := atlas.NewLiveService(w.Platform, ledger, scale, atlas.WithLiveMetrics(metrics))
	if err != nil {
		return nil, err
	}
	srv, err := atlas.NewServer(w.Platform, ledger, live,
		atlas.WithServerMetrics(metrics), atlas.WithServerEvents(rec))
	if err != nil {
		return nil, err
	}
	logger.Info("world built", "probes", w.Probes.Len(), "regions", w.Catalog.Len(), "seed", seed)
	return &app{srv: srv, live: live, registry: registry, metrics: metrics, log: logger}, nil
}

// shutdownTimeout bounds how long a graceful shutdown waits for in-flight
// requests and running measurements.
const shutdownTimeout = 10 * time.Second

// serve runs the HTTP server (and the optional pprof listener) until
// SIGINT/SIGTERM, then shuts down gracefully.
func serve(a *app, addr, debugAddr string) error {
	httpSrv := &http.Server{Addr: addr, Handler: a}
	if debugAddr != "" {
		go serveDebug(debugAddr, a.log)
	}
	errc := make(chan error, 1)
	go func() {
		a.log.Info("listening", "addr", addr)
		errc <- httpSrv.ListenAndServe()
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	a.log.Info("shutting down", "drain_timeout", shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := httpSrv.Shutdown(sctx)
	if errors.Is(err, context.DeadlineExceeded) {
		err = nil // best effort: report the final counters regardless
	}
	// Let running measurement polls settle and flush the last samples.
	a.live.Close()
	logFinal(a.metrics, a.log)
	return err
}

// logFinal emits the final telemetry summary so a terminated server
// leaves its last counters in the log.
func logFinal(m *atlas.Metrics, logger *obs.Logger) {
	logger.Info("final counters",
		"requests", m.ReqTotal.Sum(),
		"measurements", m.MeasurementsCreated.Value(),
		"done", m.MeasurementsDone.Value(),
		"failed", m.MeasurementsFailed.Value(),
		"stopped", m.MeasurementsStopped.Value(),
		"results", m.ResultsCollected.Value(),
		"ping_timeouts", m.Ping.Timeouts.Value(),
		"credits_spent", m.CreditsSpent.Value())
}

// serveDebug exposes the pprof profiling handlers on their own listener.
func serveDebug(addr string, logger *obs.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "url", "http://"+addr+"/debug/pprof/")
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug server failed", "error", err)
	}
}
