// Command atlasd runs the measurement platform server: the RIPE-Atlas-like
// HTTP API over the simulated probe fleet and cloud regions. Live
// measurements traverse the full echo/ping stack over the virtual network.
//
// Usage:
//
//	atlasd -addr :8080 -probes 800 -grant demo=100000 -scale 0.01
//
// Then, e.g.:
//
//	curl 'http://localhost:8080/api/v1/probes?country=DE&tag=wifi&limit=3'
//	curl 'http://localhost:8080/api/v1/regions'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/atlas"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atlasd: ")
	var (
		addr   = flag.String("addr", "127.0.0.1:8080", "listen address")
		probes = flag.Int("probes", 800, "probe census size")
		seed   = flag.Uint64("seed", 1, "world seed")
		scale  = flag.Float64("scale", 0.01, "time compression for live pings (0,1]")
		grant  = flag.String("grant", "demo=100000", "comma-separated account=credits grants")
	)
	flag.Parse()
	srv, err := build(*probes, *seed, *scale, *grant)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

func build(probes int, seed uint64, scale float64, grants string) (http.Handler, error) {
	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	ledger := atlas.NewLedger()
	for _, g := range strings.Split(grants, ",") {
		if g == "" {
			continue
		}
		account, amount, ok := strings.Cut(g, "=")
		if !ok {
			return nil, fmt.Errorf("bad grant %q, want account=credits", g)
		}
		credits, err := strconv.ParseInt(amount, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad credit amount in %q: %v", g, err)
		}
		if err := ledger.Grant(account, credits); err != nil {
			return nil, err
		}
		log.Printf("granted %d credits to %q", credits, account)
	}
	live, err := atlas.NewLiveService(w.Platform, ledger, scale)
	if err != nil {
		return nil, err
	}
	srv, err := atlas.NewServer(w.Platform, ledger, live)
	if err != nil {
		return nil, err
	}
	log.Printf("world: %d probes, %d regions", w.Probes.Len(), w.Catalog.Len())
	return srv, nil
}
