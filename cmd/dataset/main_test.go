package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/atlas"
	"repro/internal/results"
	"repro/internal/world"
)

// buildDataset writes a small campaign to disk and returns its directory.
func buildDataset(t *testing.T) string {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 1, Probes: 200})
	if err != nil {
		t.Fatal(err)
	}
	cfg := atlas.TestCampaign()
	dir := filepath.Join(t.TempDir(), "ds")
	_, writer, closeFn, err := results.Create(dir, cfg.Meta(1, 200, w.Catalog.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Platform.RunCampaign(context.Background(), cfg, writer.Write); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStatsOp(t *testing.T) {
	dir := buildDataset(t)
	lines, err := run(dir, "stats", "", "", 4)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"campaign:", "samples:", "rtt:", "p50~"} {
		if !strings.Contains(joined, want) {
			t.Errorf("stats output missing %q:\n%s", want, joined)
		}
	}
}

func TestContinentsOp(t *testing.T) {
	dir := buildDataset(t)
	lines, err := run(dir, "continents", "", "", 4)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"Europe", "Africa", "within-PL"} {
		if !strings.Contains(joined, want) {
			t.Errorf("continents output missing %q:\n%s", want, joined)
		}
	}
}

func TestFilterOp(t *testing.T) {
	dir := buildDataset(t)
	out := filepath.Join(t.TempDir(), "africa")
	lines, err := run(dir, "filter", "AF", out, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "Africa") {
		t.Errorf("filter output: %v", lines)
	}
	// The filtered dataset opens and contains only African probes.
	store, err := results.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := store.ForEach(func(results.Sample) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("filtered dataset empty")
	}
	// Re-filtering into the same directory is refused.
	if _, err := run(dir, "filter", "AF", out, 4); err == nil {
		t.Error("overwrite accepted")
	}
}

func TestRunErrors(t *testing.T) {
	dir := buildDataset(t)
	if _, err := run(filepath.Join(t.TempDir(), "missing"), "stats", "", "", 4); err == nil {
		t.Error("missing dataset accepted")
	}
	if _, err := run(dir, "explode", "", "", 4); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := run(dir, "filter", "", "", 4); err == nil {
		t.Error("filter without args accepted")
	}
	if _, err := run(dir, "filter", "XX", t.TempDir()+"/x", 4); err == nil {
		t.Error("bad continent accepted")
	}
}

func TestHistOp(t *testing.T) {
	dir := buildDataset(t)
	lines, err := run(dir, "hist", "", "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 32 { // header + 30 bins + overflow
		t.Fatalf("hist produced %d lines", len(lines))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "#") {
		t.Error("histogram has no bars")
	}
	if !strings.Contains(joined, ">=300ms") {
		t.Error("overflow bucket missing")
	}
}

// TestOpsWorkerInvariance checks every op emits identical output for any
// scan worker count, including the byte-exact filtered re-export.
func TestOpsWorkerInvariance(t *testing.T) {
	dir := buildDataset(t)
	for _, op := range []string{"stats", "continents", "hist"} {
		serial, err := run(dir, op, "", "", 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", op, err)
		}
		for _, n := range []int{2, 7} {
			parallel, err := run(dir, op, "", "", n)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", op, n, err)
			}
			if strings.Join(serial, "\n") != strings.Join(parallel, "\n") {
				t.Errorf("%s output differs between workers=1 and workers=%d", op, n)
			}
		}
	}
	filtered := func(workers int) []byte {
		out := filepath.Join(t.TempDir(), "eu")
		if _, err := run(dir, "filter", "EU", out, workers); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(out, "samples.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(filtered(1), filtered(7)) {
		t.Error("filtered dataset differs between workers=1 and workers=7")
	}
}
