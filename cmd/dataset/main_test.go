package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/results"
	"repro/internal/world"
)

// buildDataset writes a small campaign to disk in the given storage
// format and returns its directory.
func buildDataset(t *testing.T, format results.Format) string {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 1, Probes: 200})
	if err != nil {
		t.Fatal(err)
	}
	cfg := atlas.TestCampaign()
	dir := filepath.Join(t.TempDir(), "ds")
	_, sink, err := results.Create(dir, cfg.Meta(1, 200, w.Catalog.Len()), format)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Platform.RunCampaign(context.Background(), cfg, sink.Write); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStatsOp(t *testing.T) {
	dir := buildDataset(t, results.FormatBinary)
	lines, err := run(options{data: dir, op: "stats", workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"campaign:", "samples:", "rtt:", "p50~", "storage: format=binary", "bytes/sample"} {
		if !strings.Contains(joined, want) {
			t.Errorf("stats output missing %q:\n%s", want, joined)
		}
	}
}

func TestContinentsOp(t *testing.T) {
	dir := buildDataset(t, results.FormatBinary)
	lines, err := run(options{data: dir, op: "continents", workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"Europe", "Africa", "within-PL"} {
		if !strings.Contains(joined, want) {
			t.Errorf("continents output missing %q:\n%s", want, joined)
		}
	}
}

func TestFilterOp(t *testing.T) {
	dir := buildDataset(t, results.FormatBinary)
	out := filepath.Join(t.TempDir(), "africa")
	lines, err := run(options{data: dir, op: "filter", continent: "AF", out: out, workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "Africa") {
		t.Errorf("filter output: %v", lines)
	}
	// The filtered dataset opens, keeps the source's binary format, and
	// contains only African probes.
	store, err := results.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	if store.Format() != results.FormatBinary {
		t.Errorf("filtered store format = %v, want binary", store.Format())
	}
	n := 0
	if err := store.ForEach(func(results.Sample) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("filtered dataset empty")
	}
	// Re-filtering into the same directory is refused.
	if _, err := run(options{data: dir, op: "filter", continent: "AF", out: out, workers: 4}); err == nil {
		t.Error("overwrite accepted")
	}
}

func TestRunErrors(t *testing.T) {
	dir := buildDataset(t, results.FormatBinary)
	if _, err := run(options{data: filepath.Join(t.TempDir(), "missing"), op: "stats", workers: 4}); err == nil {
		t.Error("missing dataset accepted")
	}
	if _, err := run(options{data: dir, op: "explode", workers: 4}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := run(options{data: dir, op: "filter", workers: 4}); err == nil {
		t.Error("filter without args accepted")
	}
	if _, err := run(options{data: dir, op: "filter", continent: "XX", out: t.TempDir() + "/x", workers: 4}); err == nil {
		t.Error("bad continent accepted")
	}
	if _, err := run(options{data: dir, op: "stats", workers: 4, since: "yesterday"}); err == nil {
		t.Error("bad -since accepted")
	}
	if _, err := run(options{data: dir, op: "stats", workers: 4, until: "not-a-time"}); err == nil {
		t.Error("bad -until accepted")
	}
	if _, err := run(options{data: dir, op: "convert", workers: 4}); err == nil {
		t.Error("convert without -out accepted")
	}
	if _, err := run(options{data: dir, op: "convert", out: t.TempDir() + "/c", to: "parquet"}); err == nil {
		t.Error("unknown convert target accepted")
	}
}

func TestHistOp(t *testing.T) {
	dir := buildDataset(t, results.FormatBinary)
	lines, err := run(options{data: dir, op: "hist", workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 32 { // header + 30 bins + overflow
		t.Fatalf("hist produced %d lines", len(lines))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "#") {
		t.Error("histogram has no bars")
	}
	if !strings.Contains(joined, ">=300ms") {
		t.Error("overflow bucket missing")
	}
}

// TestStatsFastOp checks the aggregate-only stats variant: it must
// agree with the sketch-backed op on every shared figure (min, max,
// mean, the campaign and sample tallies) while omitting the quantiles,
// and produce identical output on both storage formats and for any
// worker count — even though on binary stores it resolves blocks from
// zone pre-aggregates without decoding a row.
func TestStatsFastOp(t *testing.T) {
	jdir := buildDataset(t, results.FormatJSONL)
	bdir := filepath.Join(t.TempDir(), "bin")
	if _, err := run(options{data: jdir, op: "convert", out: bdir}); err != nil {
		t.Fatal(err)
	}
	fast, err := run(options{data: bdir, op: "stats", fast: true, workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(fast, "\n")
	if strings.Contains(joined, "p50~") || strings.Contains(joined, "p95~") {
		t.Errorf("-fast stats reports quantiles:\n%s", joined)
	}
	for _, want := range []string{"campaign:", "samples:", "rtt: min="} {
		if !strings.Contains(joined, want) {
			t.Errorf("-fast stats missing %q:\n%s", want, joined)
		}
	}

	// Shared figures agree with the sketch-backed op.
	slow, err := run(options{data: bdir, op: "stats", workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tokens := func(lines []string) map[string]string {
		m := map[string]string{}
		for _, l := range lines {
			if strings.HasPrefix(l, "campaign:") || strings.HasPrefix(l, "samples:") {
				m[strings.SplitN(l, ":", 2)[0]] = l
			}
			if strings.HasPrefix(l, "rtt:") {
				for _, f := range strings.Fields(l) {
					for _, key := range []string{"min=", "max=", "mean="} {
						if strings.HasPrefix(f, key) {
							m[key] = f
						}
					}
				}
			}
		}
		return m
	}
	ft, st := tokens(fast), tokens(slow)
	for _, key := range []string{"campaign", "samples", "min=", "max=", "mean="} {
		if ft[key] != st[key] {
			t.Errorf("fast/slow stats disagree on %s: %q vs %q", key, ft[key], st[key])
		}
	}

	// Format equivalence and worker invariance.
	jfast, err := run(options{data: jdir, op: "stats", fast: true, workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	strip := func(lines []string) string {
		var kept []string
		for _, l := range lines {
			if !strings.HasPrefix(l, "storage:") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(jfast) != strip(fast) {
		t.Errorf("-fast stats differ across formats:\njsonl:\n%s\nbinary:\n%s", strip(jfast), strip(fast))
	}
	for _, n := range []int{1, 7} {
		again, err := run(options{data: bdir, op: "stats", fast: true, workers: n})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(again, "\n") != joined {
			t.Errorf("-fast stats differ between workers=4 and workers=%d", n)
		}
	}
}

// TestRegionsOp checks the per-region tally op: identical output on
// both storage formats (zone aggregate list vs per-row fold), with and
// without a time window, and for any worker count.
func TestRegionsOp(t *testing.T) {
	jdir := buildDataset(t, results.FormatJSONL)
	bdir := filepath.Join(t.TempDir(), "bin")
	if _, err := run(options{data: jdir, op: "convert", out: bdir}); err != nil {
		t.Fatal(err)
	}
	cfg := atlas.TestCampaign()
	since := cfg.Start.Add(7 * 24 * time.Hour).Format(time.RFC3339)
	until := cfg.Start.Add(10 * 24 * time.Hour).Format(time.RFC3339)
	for _, window := range []bool{false, true} {
		o := options{data: jdir, op: "regions", workers: 3}
		if window {
			o.since, o.until = since, until
		}
		want, err := run(o)
		if err != nil {
			t.Fatalf("regions jsonl window=%v: %v", window, err)
		}
		if len(want) < 2 || !strings.Contains(want[0], "region") || !strings.Contains(want[0], "mean-rtt") {
			t.Fatalf("regions output malformed:\n%s", strings.Join(want, "\n"))
		}
		o.data = bdir
		got, err := run(o)
		if err != nil {
			t.Fatalf("regions binary window=%v: %v", window, err)
		}
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Errorf("regions window=%v: jsonl and binary outputs differ", window)
		}
	}
	serial, err := run(options{data: bdir, op: "regions", workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 7} {
		parallel, err := run(options{data: bdir, op: "regions", workers: n})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(serial, "\n") != strings.Join(parallel, "\n") {
			t.Errorf("regions output differs between workers=1 and workers=%d", n)
		}
	}
}

// TestConvertOp round-trips a JSONL dataset through the binary format
// and back, checking the final JSONL bytes are identical to the source
// and that the binary encoding is at most half the size.
func TestConvertOp(t *testing.T) {
	dir := buildDataset(t, results.FormatJSONL)
	bin := filepath.Join(t.TempDir(), "bin")
	// Empty -to flips the source format: jsonl -> binary.
	lines, err := run(options{data: dir, op: "convert", out: bin})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "-> binary") {
		t.Errorf("convert output: %v", lines)
	}
	src, err := os.ReadFile(filepath.Join(dir, "samples.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	bi, err := os.Stat(filepath.Join(bin, "samples.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if bi.Size() > int64(len(src))/2 {
		t.Errorf("binary file is %d bytes, want <= half of %d-byte JSONL", bi.Size(), len(src))
	}
	// And back: binary -> jsonl must reproduce the source byte for byte.
	back := filepath.Join(t.TempDir(), "back")
	if _, err := run(options{data: bin, op: "convert", out: back, to: "jsonl"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(back, "samples.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Error("jsonl -> binary -> jsonl round trip is not byte-identical")
	}
	// Converting onto an existing directory is refused.
	if _, err := run(options{data: dir, op: "convert", out: bin}); err == nil {
		t.Error("overwrite accepted")
	}
}

// TestOpsFormatEquivalence pins every scan op's stdout to be identical
// on a JSONL store and its binary conversion, with and without a time
// window.
func TestOpsFormatEquivalence(t *testing.T) {
	jdir := buildDataset(t, results.FormatJSONL)
	bdir := filepath.Join(t.TempDir(), "bin")
	if _, err := run(options{data: jdir, op: "convert", out: bdir}); err != nil {
		t.Fatal(err)
	}
	cfg := atlas.TestCampaign()
	since := cfg.Start.Add(7 * 24 * time.Hour).Format(time.RFC3339)
	until := cfg.Start.Add(10 * 24 * time.Hour).Format(time.RFC3339)
	for _, op := range []string{"continents", "hist"} {
		for _, window := range []bool{false, true} {
			o := options{data: jdir, op: op, workers: 3}
			if window {
				o.since, o.until = since, until
			}
			want, err := run(o)
			if err != nil {
				t.Fatalf("%s jsonl window=%v: %v", op, window, err)
			}
			o.data = bdir
			got, err := run(o)
			if err != nil {
				t.Fatalf("%s binary window=%v: %v", op, window, err)
			}
			if strings.Join(want, "\n") != strings.Join(got, "\n") {
				t.Errorf("%s window=%v: jsonl and binary outputs differ", op, window)
			}
		}
	}
	// stats reports the storage line, so compare the remaining lines.
	strip := func(lines []string) string {
		var kept []string
		for _, l := range lines {
			if !strings.HasPrefix(l, "storage:") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	want, err := run(options{data: jdir, op: "stats", workers: 3, since: since, until: until})
	if err != nil {
		t.Fatal(err)
	}
	got, err := run(options{data: bdir, op: "stats", workers: 3, since: since, until: until})
	if err != nil {
		t.Fatal(err)
	}
	if strip(want) != strip(got) {
		t.Errorf("windowed stats differ:\njsonl:\n%s\nbinary:\n%s", strip(want), strip(got))
	}
}

// TestOpsWorkerInvariance checks every op emits identical output for any
// scan worker count on both storage formats, including the byte-exact
// filtered re-export.
func TestOpsWorkerInvariance(t *testing.T) {
	for _, format := range []results.Format{results.FormatJSONL, results.FormatBinary} {
		dir := buildDataset(t, format)
		for _, op := range []string{"stats", "continents", "hist"} {
			serial, err := run(options{data: dir, op: op, workers: 1})
			if err != nil {
				t.Fatalf("%s %s workers=1: %v", format, op, err)
			}
			for _, n := range []int{2, 7} {
				parallel, err := run(options{data: dir, op: op, workers: n})
				if err != nil {
					t.Fatalf("%s %s workers=%d: %v", format, op, n, err)
				}
				if strings.Join(serial, "\n") != strings.Join(parallel, "\n") {
					t.Errorf("%s %s output differs between workers=1 and workers=%d", format, op, n)
				}
			}
		}
		filtered := func(workers int) []byte {
			out := filepath.Join(t.TempDir(), "eu")
			if _, err := run(options{data: dir, op: "filter", continent: "EU", out: out, workers: workers}); err != nil {
				t.Fatal(err)
			}
			store, err := results.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(store.SamplesPath())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		if !bytes.Equal(filtered(1), filtered(7)) {
			t.Errorf("%s filtered dataset differs between workers=1 and workers=7", format)
		}
	}
}

// TestWindowOp exercises the index-backed window op: per-continent
// sample counts must match a direct fold of the same window, the
// second run must reuse the sidecar built by the first, and the op
// must reject JSONL stores and malformed ranges.
func TestWindowOp(t *testing.T) {
	dir := buildDataset(t, results.FormatBinary)
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var samples []results.Sample
	if err := store.ForEach(func(s results.Sample) error {
		samples = append(samples, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	since := samples[len(samples)/4].Time
	until := samples[len(samples)*3/4].Time
	w, err := world.Build(world.Config{Seed: 1, Probes: 200})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int)
	for _, s := range samples {
		if s.Time.Before(since) || !s.Time.Before(until) || s.Lost {
			continue
		}
		if ct, ok := w.Index.Continent(s.ProbeID); ok {
			want[ct.String()]++
		}
	}

	winFlag := since.Format(time.RFC3339) + "," + until.Format(time.RFC3339)
	lines, err := run(options{data: dir, op: "window", window: winFlag})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, wantStr := range []string{"window: [", "index: ", "rows: ", "nodes composed"} {
		if !strings.Contains(joined, wantStr) {
			t.Errorf("window output missing %q:\n%s", wantStr, joined)
		}
	}
	got := make(map[string]int)
	for _, line := range lines {
		for name := range want {
			if strings.HasPrefix(line, name) {
				fields := strings.Fields(line[len(name):])
				if len(fields) < 1 {
					t.Fatalf("unparseable continent line %q", line)
				}
				var n int
				if _, err := fmt.Sscanf(fields[0], "%d", &n); err != nil {
					t.Fatalf("unparseable sample count in %q: %v", line, err)
				}
				got[name] = n
			}
		}
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("%s: window op reports %d samples, reference fold %d", name, got[name], n)
		}
	}

	// The first run left samples.tix behind; a second run answers from it
	// byte-identically (modulo the timing in the window line).
	if _, err := os.Stat(store.TixPath()); err != nil {
		t.Fatalf("window op left no sidecar: %v", err)
	}
	again, err := run(options{data: dir, op: "window", window: winFlag})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(lines[1:], "\n") != strings.Join(again[1:], "\n") {
		t.Errorf("repeat window op diverged:\n%s\nvs\n%s", joined, strings.Join(again, "\n"))
	}

	if _, err := run(options{data: dir, op: "window", window: "not-a-time,also-not"}); err == nil {
		t.Error("bad -window accepted")
	}
	if _, err := run(options{data: dir, op: "window", window: "backwards"}); err == nil {
		t.Error("-window without comma accepted")
	}
	jsonl := buildDataset(t, results.FormatJSONL)
	if _, err := run(options{data: jsonl, op: "window", window: winFlag}); err == nil {
		t.Error("window op accepted a JSONL store")
	}
}
