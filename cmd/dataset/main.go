// Command dataset inspects a stored campaign dataset without loading it
// into memory: streaming summary statistics (using the P² estimator for
// quantiles), per-continent/per-band tallies, and filtered re-export.
//
// Usage:
//
//	dataset -data ./dataset stats
//	dataset -data ./dataset continents
//	dataset -data ./dataset hist
//	dataset -data ./dataset filter -continent AF -out ./africa
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/results"
	"repro/internal/stats"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dataset: ")
	var (
		data      = flag.String("data", "dataset", "dataset directory")
		continent = flag.String("continent", "", "continent filter for the filter op (two-letter code)")
		out       = flag.String("out", "", "output directory for the filter op")
	)
	flag.Parse()
	op := flag.Arg(0)
	if op == "" {
		op = "stats"
	}
	lines, err := run(*data, op, *continent, *out)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

func run(data, op, continent, out string) ([]string, error) {
	store, err := results.Open(data)
	if err != nil {
		return nil, err
	}
	switch op {
	case "stats":
		return statsOp(store)
	case "continents":
		return continentsOp(store)
	case "filter":
		return filterOp(store, continent, out)
	case "hist":
		return histOp(store)
	default:
		return nil, fmt.Errorf("unknown op %q (want stats, continents, hist, or filter)", op)
	}
}

// statsOp streams the dataset once, keeping O(1) state.
func statsOp(store *results.Store) ([]string, error) {
	meta := store.Meta()
	var (
		total, lost   uint64
		sum, min, max float64
		p50, p95      *stats.P2
		firstRTT      = true
	)
	var err error
	if p50, err = stats.NewP2(0.5); err != nil {
		return nil, err
	}
	if p95, err = stats.NewP2(0.95); err != nil {
		return nil, err
	}
	err = store.ForEach(func(s results.Sample) error {
		total++
		if s.Lost {
			lost++
			return nil
		}
		sum += s.RTTms
		if firstRTT || s.RTTms < min {
			min = s.RTTms
		}
		if firstRTT || s.RTTms > max {
			max = s.RTTms
		}
		firstRTT = false
		if err := p50.Add(s.RTTms); err != nil {
			return err
		}
		return p95.Add(s.RTTms)
	})
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, fmt.Errorf("dataset is empty")
	}
	delivered := total - lost
	lines := []string{
		fmt.Sprintf("campaign: seed=%d %s..%s interval=%.0fh probes=%d regions=%d",
			meta.Seed, meta.Start.Format("2006-01-02"), meta.End.Format("2006-01-02"),
			meta.IntervalHours, meta.Probes, meta.Regions),
		fmt.Sprintf("samples: %d total, %d delivered, %d lost (%.2f%%)",
			total, delivered, lost, 100*float64(lost)/float64(total)),
	}
	if delivered > 0 {
		med, err := p50.Value()
		if err != nil {
			return nil, err
		}
		q95, err := p95.Value()
		if err != nil {
			return nil, err
		}
		lines = append(lines, fmt.Sprintf("rtt: min=%.1fms p50~%.1fms p95~%.1fms max=%.1fms mean=%.1fms",
			min, med, q95, max, sum/float64(delivered)))
	}
	return lines, nil
}

// histOp renders an ASCII histogram of the delivered RTTs (0-300 ms in
// 10 ms bins, plus an overflow bucket), streaming the dataset once.
func histOp(store *results.Store) ([]string, error) {
	h, err := stats.NewHistogram(0, 300, 30)
	if err != nil {
		return nil, err
	}
	err = store.ForEach(func(s results.Sample) error {
		if s.Lost {
			return nil
		}
		return h.Add(s.RTTms)
	})
	if err != nil {
		return nil, err
	}
	if h.Total() == 0 {
		return nil, fmt.Errorf("dataset has no delivered samples")
	}
	var max uint64
	for _, bin := range h.Bins() {
		if bin.Count > max {
			max = bin.Count
		}
	}
	if h.Overflow() > max {
		max = h.Overflow()
	}
	const barWidth = 50
	bar := func(n uint64) string {
		if max == 0 {
			return ""
		}
		return strings.Repeat("#", int(n*barWidth/max))
	}
	lines := []string{fmt.Sprintf("RTT histogram (%d delivered samples)", h.Total())}
	for _, bin := range h.Bins() {
		lines = append(lines, fmt.Sprintf("%3.0f-%3.0fms %8d %s", bin.Lo, bin.Hi, bin.Count, bar(bin.Count)))
	}
	lines = append(lines, fmt.Sprintf("  >=300ms %8d %s", h.Overflow(), bar(h.Overflow())))
	return lines, nil
}

// continentsOp tallies delivered samples per continent; it rebuilds the
// probe census from the stored seed to map probe IDs.
func continentsOp(store *results.Store) ([]string, error) {
	meta := store.Meta()
	w, err := world.Build(world.Config{Seed: meta.Seed, Probes: meta.Probes})
	if err != nil {
		return nil, err
	}
	counts := make(map[geo.Continent]uint64)
	var within map[geo.Continent]uint64 = make(map[geo.Continent]uint64)
	err = store.ForEach(func(s results.Sample) error {
		if s.Lost {
			return nil
		}
		ct, ok := w.Index.Continent(s.ProbeID)
		if !ok {
			return nil
		}
		counts[ct]++
		if s.RTTms <= core.PLms {
			within[ct]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	lines := []string{"continent       samples     within-PL"}
	for _, ct := range geo.Continents() {
		if counts[ct] == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("%-14s %9d  %11.1f%%",
			ct.String(), counts[ct], 100*float64(within[ct])/float64(counts[ct])))
	}
	return lines, nil
}

// filterOp re-exports the samples of one continent into a new dataset.
func filterOp(store *results.Store, continent, out string) ([]string, error) {
	if continent == "" || out == "" {
		return nil, fmt.Errorf("filter needs -continent and -out")
	}
	ct, err := geo.ParseContinent(continent)
	if err != nil {
		return nil, err
	}
	meta := store.Meta()
	w, err := world.Build(world.Config{Seed: meta.Seed, Probes: meta.Probes})
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(out); err == nil {
		return nil, fmt.Errorf("output %s already exists", out)
	}
	_, writer, closeFn, err := results.Create(out, meta)
	if err != nil {
		return nil, err
	}
	err = store.ForEach(func(s results.Sample) error {
		if got, ok := w.Index.Continent(s.ProbeID); ok && got == ct {
			return writer.Write(s)
		}
		return nil
	})
	if err != nil {
		closeFn()
		return nil, err
	}
	n := writer.Count()
	if err := closeFn(); err != nil {
		return nil, err
	}
	return []string{fmt.Sprintf("wrote %d %s samples to %s", n, ct, out)}, nil
}
