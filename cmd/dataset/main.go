// Command dataset inspects a stored campaign dataset without loading it
// into memory: streaming summary statistics (using a mergeable bucket
// sketch for quantiles), per-continent/per-band tallies, filtered
// re-export, and format conversion. Every op runs on either storage
// format (binary samples.bin or JSONL samples.jsonl) via the parallel
// scanner; -workers shards the file and the output is identical for any
// worker count.
//
// Usage:
//
//	dataset -data ./dataset stats
//	dataset -data ./dataset -fast stats
//	dataset -data ./dataset continents
//	dataset -data ./dataset regions
//	dataset -data ./dataset -workers 8 hist
//	dataset -data ./dataset -continent AF -out ./africa filter
//	dataset -data ./dataset -out ./ds-jsonl -to jsonl convert
//	dataset -data ./dataset -since 2019-07-08T00:00:00Z -until 2019-07-15T00:00:00Z stats
//	dataset -data ./dataset -window 2019-07-08T00:00:00Z,2019-07-15T00:00:00Z window
//
// -since/-until restrict the scan ops to a time window; on binary
// stores the scanner skips whole blocks via their zone maps, so a
// narrow window touches only a fraction of the file.
//
// The window op answers from the temporal aggregate index (samples.tix)
// alone: it opens or builds the sidecar, composes the -window range
// from pre-merged segment nodes plus edge-block decodes, and prints
// per-continent quantiles along with how many nodes and edge blocks
// the composition touched. Binary stores only.
//
// -fast switches the stats op to an aggregate-only pass that resolves
// whole blocks from their zone pre-aggregates with zero row decode on
// v2 binary stores; it trades the p50/p95 sketch away for that. The
// regions op likewise folds the zones' per-region aggregate lists when
// the store carries them, decoding rows only for blocks that don't.
//
// Flags precede the op: flag parsing stops at the first positional
// argument.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/colf"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/results"
	"repro/internal/scan"
	"repro/internal/stats"
	"repro/internal/tix"
	"repro/internal/world"
)

// options bundles the command's knobs (one field per flag) plus the op.
type options struct {
	data      string
	op        string
	continent string
	out       string
	workers   int
	to        string // convert target format; empty flips the source format
	since     string // RFC 3339 window start for scan ops
	until     string // RFC 3339 window end (exclusive) for scan ops
	window    string // "since,until" range for the window op
	fast      bool   // stats: aggregate-only pass, zone-resolved where possible
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dataset: ")
	var o options
	flag.StringVar(&o.data, "data", "dataset", "dataset directory")
	flag.StringVar(&o.continent, "continent", "", "continent filter for the filter op (two-letter code)")
	flag.StringVar(&o.out, "out", "", "output directory for the filter and convert ops")
	flag.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0), "scan worker count (output is identical for any value)")
	flag.StringVar(&o.to, "to", "", "convert target format: binary or jsonl (default: the other format)")
	flag.StringVar(&o.since, "since", "", "restrict scan ops to samples at or after this RFC 3339 time")
	flag.StringVar(&o.until, "until", "", "restrict scan ops to samples before this RFC 3339 time")
	flag.StringVar(&o.window, "window", "", "window op range as \"since,until\" (RFC 3339; either side may be empty for an open end)")
	flag.BoolVar(&o.fast, "fast", false, "stats op: aggregate-only pass resolving blocks from zone pre-aggregates (omits p50/p95)")
	flag.Parse()
	o.op = flag.Arg(0)
	if o.op == "" {
		o.op = "stats"
	}
	lines, err := run(o)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

func run(o options) ([]string, error) {
	store, err := results.Open(o.data)
	if err != nil {
		return nil, err
	}
	pred, err := windowPredicate(o.since, o.until)
	if err != nil {
		return nil, err
	}
	switch o.op {
	case "stats":
		if o.fast {
			return statsFastOp(store, pred, o.workers)
		}
		return statsOp(store, pred, o.workers)
	case "continents":
		return continentsOp(store, pred, o.workers)
	case "regions":
		return regionsOp(store, pred, o.workers)
	case "filter":
		return filterOp(store, pred, o.continent, o.out, o.workers)
	case "hist":
		return histOp(store, pred, o.workers)
	case "convert":
		return convertOp(store, o.out, o.to)
	case "window":
		return windowOp(store, o.window, o.since, o.until)
	default:
		return nil, fmt.Errorf("unknown op %q (want stats, continents, regions, hist, window, filter, or convert)", o.op)
	}
}

// windowPredicate builds the scan predicate for the -since/-until
// window; both empty yields nil (scan everything).
func windowPredicate(since, until string) (*colf.Predicate, error) {
	if since == "" && until == "" {
		return nil, nil
	}
	var p colf.Predicate
	var err error
	if since != "" {
		if p.Since, err = time.Parse(time.RFC3339, since); err != nil {
			return nil, fmt.Errorf("bad -since: %w", err)
		}
	}
	if until != "" {
		if p.Until, err = time.Parse(time.RFC3339, until); err != nil {
			return nil, fmt.Errorf("bad -until: %w", err)
		}
	}
	return &p, nil
}

// scanWith runs one pass per worker over the store's samples file and
// returns the first (merged) pass. Scan throughput goes to stderr so ops
// keep their exact stdout shape.
func scanWith(store *results.Store, pred *colf.Predicate, workers int, newPass func() scan.Pass) (scan.Pass, error) {
	var passes []scan.Pass
	st, err := scan.File(context.Background(), scan.Config{
		Path:      store.SamplesPath(),
		Workers:   workers,
		Predicate: pred,
		NewPasses: func(int) ([]scan.Pass, error) {
			p := newPass()
			passes = append(passes, p)
			return []scan.Pass{p}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	if st.Binary {
		log.Printf("scan: %d samples in %v (%.1f MB/s, %.0f samples/s, %d workers, %d/%d blocks read, %d skipped, %d zone-resolved)",
			st.Samples, st.Duration.Round(time.Millisecond), st.MBPerSec(), st.SamplesPerSec(), st.Workers,
			st.BlocksRead, st.BlocksTotal, st.BlocksSkipped, st.BlocksZone)
	} else {
		log.Printf("scan: %d samples in %v (%.1f MB/s, %.0f samples/s, %d workers)",
			st.Samples, st.Duration.Round(time.Millisecond), st.MBPerSec(), st.SamplesPerSec(), st.Workers)
	}
	return passes[0], nil
}

// convertOp re-encodes the dataset into the other storage format (or
// the one named by -to), preserving sample order exactly.
func convertOp(store *results.Store, out, to string) ([]string, error) {
	if out == "" {
		return nil, fmt.Errorf("convert needs -out")
	}
	target := results.FormatBinary
	if to == "" {
		if store.Format() == results.FormatBinary {
			target = results.FormatJSONL
		}
	} else {
		var err error
		if target, err = results.ParseFormat(to); err != nil {
			return nil, err
		}
	}
	if _, err := os.Stat(out); err == nil {
		return nil, fmt.Errorf("output %s already exists", out)
	}
	_, sink, err := results.Create(out, store.Meta(), target)
	if err != nil {
		return nil, err
	}
	if err := store.ForEach(sink.Write); err != nil {
		sink.Close()
		return nil, err
	}
	n := sink.Count()
	if err := sink.Close(); err != nil {
		return nil, err
	}
	srcSize, err := sampleFileSize(store)
	if err != nil {
		return nil, err
	}
	dst, err := results.Open(out)
	if err != nil {
		return nil, err
	}
	dstSize, err := sampleFileSize(dst)
	if err != nil {
		return nil, err
	}
	return []string{fmt.Sprintf("converted %d samples %s (%d bytes) -> %s %s (%d bytes)",
		n, store.Format(), srcSize, target, out, dstSize)}, nil
}

// sampleFileSize returns the on-disk size of the store's samples file.
func sampleFileSize(store *results.Store) (int64, error) {
	fi, err := os.Stat(store.SamplesPath())
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// statsPass keeps O(1) summary state: exact count/min/max/mean plus a
// mergeable quantile sketch, so shards combine without replaying samples.
type statsPass struct {
	total, lost   uint64
	sum, min, max float64
	delivered     uint64
	sketch        *stats.QuantileSketch
}

func newStatsPass() *statsPass { return &statsPass{sketch: stats.NewRTTSketch()} }

func (p *statsPass) Observe(s results.Sample) error {
	p.total++
	if s.Lost {
		p.lost++
		return nil
	}
	p.sum += s.RTTms
	if p.delivered == 0 || s.RTTms < p.min {
		p.min = s.RTTms
	}
	if p.delivered == 0 || s.RTTms > p.max {
		p.max = s.RTTms
	}
	p.delivered++
	return p.sketch.Add(s.RTTms)
}

func (p *statsPass) Merge(other scan.Pass) error {
	o := other.(*statsPass)
	p.total += o.total
	p.lost += o.lost
	p.sum += o.sum
	if o.delivered > 0 {
		if p.delivered == 0 || o.min < p.min {
			p.min = o.min
		}
		if p.delivered == 0 || o.max > p.max {
			p.max = o.max
		}
	}
	p.delivered += o.delivered
	return p.sketch.Merge(o.sketch)
}

// statsOp scans the dataset once, keeping O(1) state per worker.
func statsOp(store *results.Store, pred *colf.Predicate, workers int) ([]string, error) {
	meta := store.Meta()
	merged, err := scanWith(store, pred, workers, func() scan.Pass { return newStatsPass() })
	if err != nil {
		return nil, err
	}
	p := merged.(*statsPass)
	if p.total == 0 {
		return nil, fmt.Errorf("dataset is empty")
	}
	size, err := sampleFileSize(store)
	if err != nil {
		return nil, err
	}
	delivered := p.total - p.lost
	lines := []string{
		fmt.Sprintf("campaign: seed=%d %s..%s interval=%.0fh probes=%d regions=%d",
			meta.Seed, meta.Start.Format("2006-01-02"), meta.End.Format("2006-01-02"),
			meta.IntervalHours, meta.Probes, meta.Regions),
		fmt.Sprintf("storage: format=%s, %d bytes on disk (%.1f bytes/sample)",
			store.Format(), size, float64(size)/float64(p.total)),
		fmt.Sprintf("samples: %d total, %d delivered, %d lost (%.2f%%)",
			p.total, delivered, p.lost, 100*float64(p.lost)/float64(p.total)),
	}
	if delivered > 0 {
		med, err := p.sketch.Quantile(0.5)
		if err != nil {
			return nil, err
		}
		q95, err := p.sketch.Quantile(0.95)
		if err != nil {
			return nil, err
		}
		lines = append(lines, fmt.Sprintf("rtt: min=%.1fms p50~%.1fms p95~%.1fms max=%.1fms mean=%.1fms",
			p.min, med, q95, p.max, p.sum/float64(delivered)))
	}
	return lines, nil
}

// statsFastPass is the aggregate-only stats kernel. On v2 binary
// stores it resolves whole blocks from their zone pre-aggregates with
// zero row decode (ZonePass); blocks without usable aggregates take
// the columnar batch path (BlockPass); JSONL stores and partially
// covered blocks fall back to per-row Observe. It keeps no quantile
// sketch — that is the price of the zone path — so -fast omits
// p50/p95.
type statsFastPass struct {
	total, lost   uint64
	sum, min, max float64
	delivered     uint64
}

// absorb folds a delivered-RTT aggregate (one row, one block, or one
// zone) into the pass state.
func (p *statsFastPass) absorb(min, max, sum float64, delivered uint64) {
	if delivered == 0 {
		return
	}
	p.sum += sum
	if p.delivered == 0 || min < p.min {
		p.min = min
	}
	if p.delivered == 0 || max > p.max {
		p.max = max
	}
	p.delivered += delivered
}

func (p *statsFastPass) Observe(s results.Sample) error {
	p.total++
	if s.Lost {
		p.lost++
		return nil
	}
	p.absorb(s.RTTms, s.RTTms, s.RTTms, 1)
	return nil
}

func (p *statsFastPass) Columns() colf.ColumnSet { return 0 }

func (p *statsFastPass) ObserveBlock(blk *colf.Block) error {
	p.total += uint64(blk.Rows())
	for i, v := range blk.RTT {
		if blk.Lost[i] {
			p.lost++
			continue
		}
		p.absorb(v, v, v, 1)
	}
	return nil
}

func (p *statsFastPass) CanObserveZone(z colf.Zone) bool {
	// v1 zones carry min/max but no RTT sum; without it the mean is
	// unrecoverable, so such blocks decode instead.
	return z.Delivered == 0 || z.HasAgg
}

func (p *statsFastPass) ObserveZone(z colf.Zone) error {
	p.total += uint64(z.Rows)
	p.lost += uint64(z.Rows - z.Delivered)
	p.absorb(z.MinRTT, z.MaxRTT, z.RTTSum, uint64(z.Delivered))
	return nil
}

func (p *statsFastPass) Merge(other scan.Pass) error {
	o := other.(*statsFastPass)
	p.total += o.total
	p.lost += o.lost
	p.absorb(o.min, o.max, o.sum, o.delivered)
	return nil
}

// statsFastOp is the -fast variant of statsOp: identical campaign,
// storage and sample lines, min/max/mean without the quantile sketch.
func statsFastOp(store *results.Store, pred *colf.Predicate, workers int) ([]string, error) {
	meta := store.Meta()
	merged, err := scanWith(store, pred, workers, func() scan.Pass { return &statsFastPass{} })
	if err != nil {
		return nil, err
	}
	p := merged.(*statsFastPass)
	if p.total == 0 {
		return nil, fmt.Errorf("dataset is empty")
	}
	size, err := sampleFileSize(store)
	if err != nil {
		return nil, err
	}
	lines := []string{
		fmt.Sprintf("campaign: seed=%d %s..%s interval=%.0fh probes=%d regions=%d",
			meta.Seed, meta.Start.Format("2006-01-02"), meta.End.Format("2006-01-02"),
			meta.IntervalHours, meta.Probes, meta.Regions),
		fmt.Sprintf("storage: format=%s, %d bytes on disk (%.1f bytes/sample)",
			store.Format(), size, float64(size)/float64(p.total)),
		fmt.Sprintf("samples: %d total, %d delivered, %d lost (%.2f%%)",
			p.total, p.delivered, p.lost, 100*float64(p.lost)/float64(p.total)),
	}
	if p.delivered > 0 {
		lines = append(lines, fmt.Sprintf("rtt: min=%.1fms max=%.1fms mean=%.1fms",
			p.min, p.max, p.sum/float64(p.delivered)))
	}
	return lines, nil
}

// regionAgg is one region's tally.
type regionAgg struct {
	rows, delivered uint64
	sum             float64
}

// regionsPass tallies rows, delivered samples and mean delivered RTT
// per region. On v2 binary stores whole blocks resolve from the zone's
// per-region aggregate list without decoding a row; blocks without the
// list (v1 stores, dictionaries past the zone cap) use the
// dictionary-coded batch path, and JSONL stores observe per row.
type regionsPass struct {
	byRegion map[string]*regionAgg
	// accs caches the code → accumulator resolution for the current
	// block's dictionary.
	accs []*regionAgg
}

func (p *regionsPass) acc(region string) *regionAgg {
	a := p.byRegion[region]
	if a == nil {
		a = &regionAgg{}
		p.byRegion[region] = a
	}
	return a
}

func (p *regionsPass) Observe(s results.Sample) error {
	a := p.acc(s.Region)
	a.rows++
	if !s.Lost {
		a.delivered++
		a.sum += s.RTTms
	}
	return nil
}

func (p *regionsPass) Columns() colf.ColumnSet { return colf.ColRegionIDs }

func (p *regionsPass) ObserveBlock(blk *colf.Block) error {
	if cap(p.accs) < len(blk.Dict) {
		p.accs = make([]*regionAgg, len(blk.Dict))
	}
	p.accs = p.accs[:len(blk.Dict)]
	for i := range p.accs {
		p.accs[i] = nil
	}
	for i, code := range blk.RegionID {
		a := p.accs[code]
		if a == nil {
			a = p.acc(blk.Dict[code])
			p.accs[code] = a
		}
		a.rows++
		if !blk.Lost[i] {
			a.delivered++
			a.sum += blk.RTT[i]
		}
	}
	return nil
}

func (p *regionsPass) CanObserveZone(z colf.Zone) bool {
	return z.Rows == 0 || (z.HasAgg && len(z.Regions) > 0)
}

func (p *regionsPass) ObserveZone(z colf.Zone) error {
	for _, rz := range z.Regions {
		a := p.acc(rz.Region)
		a.rows += uint64(rz.Rows)
		a.delivered += uint64(rz.Delivered)
		a.sum += rz.RTTSum
	}
	return nil
}

func (p *regionsPass) Merge(other scan.Pass) error {
	for region, oa := range other.(*regionsPass).byRegion {
		a := p.acc(region)
		a.rows += oa.rows
		a.delivered += oa.delivered
		a.sum += oa.sum
	}
	return nil
}

// regionsOp prints the per-region tallies in region order.
func regionsOp(store *results.Store, pred *colf.Predicate, workers int) ([]string, error) {
	merged, err := scanWith(store, pred, workers, func() scan.Pass {
		return &regionsPass{byRegion: make(map[string]*regionAgg)}
	})
	if err != nil {
		return nil, err
	}
	p := merged.(*regionsPass)
	if len(p.byRegion) == 0 {
		return nil, fmt.Errorf("dataset is empty")
	}
	names := make([]string, 0, len(p.byRegion))
	for name := range p.byRegion {
		names = append(names, name)
	}
	sort.Strings(names)
	lines := []string{"region                             rows  delivered   mean-rtt"}
	for _, name := range names {
		a := p.byRegion[name]
		mean := "-"
		if a.delivered > 0 {
			mean = fmt.Sprintf("%.1fms", a.sum/float64(a.delivered))
		}
		lines = append(lines, fmt.Sprintf("%-30s %9d %10d %10s", name, a.rows, a.delivered, mean))
	}
	return lines, nil
}

// histPass wraps the fixed-bin histogram, whose counts merge exactly.
type histPass struct{ h *stats.Histogram }

func (p *histPass) Observe(s results.Sample) error {
	if s.Lost {
		return nil
	}
	return p.h.Add(s.RTTms)
}

func (p *histPass) Columns() colf.ColumnSet { return 0 }

// ObserveBlock feeds the contiguous delivered runs of the RTT column
// to the histogram's bulk entry point.
func (p *histPass) ObserveBlock(blk *colf.Block) error {
	rtt, lost := blk.RTT, blk.Lost
	for i := 0; i < len(rtt); {
		if lost[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(rtt) && !lost[j] {
			j++
		}
		if err := p.h.AddBulk(rtt[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

func (p *histPass) Merge(other scan.Pass) error { return p.h.Merge(other.(*histPass).h) }

// histOp renders an ASCII histogram of the delivered RTTs (0-300 ms in
// 10 ms bins, plus an overflow bucket), scanning the dataset once.
func histOp(store *results.Store, pred *colf.Predicate, workers int) ([]string, error) {
	merged, err := scanWith(store, pred, workers, func() scan.Pass {
		h, err := stats.NewHistogram(0, 300, 30)
		if err != nil {
			panic(err) // static bounds; cannot fail
		}
		return &histPass{h: h}
	})
	if err != nil {
		return nil, err
	}
	h := merged.(*histPass).h
	if h.Total() == 0 {
		return nil, fmt.Errorf("dataset has no delivered samples")
	}
	var max uint64
	for _, bin := range h.Bins() {
		if bin.Count > max {
			max = bin.Count
		}
	}
	if h.Overflow() > max {
		max = h.Overflow()
	}
	const barWidth = 50
	bar := func(n uint64) string {
		if max == 0 {
			return ""
		}
		return strings.Repeat("#", int(n*barWidth/max))
	}
	lines := []string{fmt.Sprintf("RTT histogram (%d delivered samples)", h.Total())}
	for _, bin := range h.Bins() {
		lines = append(lines, fmt.Sprintf("%3.0f-%3.0fms %8d %s", bin.Lo, bin.Hi, bin.Count, bar(bin.Count)))
	}
	lines = append(lines, fmt.Sprintf("  >=300ms %8d %s", h.Overflow(), bar(h.Overflow())))
	return lines, nil
}

// continentsPass tallies delivered samples per continent.
type continentsPass struct {
	idx    *core.Index
	counts map[geo.Continent]uint64
	within map[geo.Continent]uint64
}

func (p *continentsPass) Observe(s results.Sample) error {
	if s.Lost {
		return nil
	}
	ct, ok := p.idx.Continent(s.ProbeID)
	if !ok {
		return nil
	}
	p.counts[ct]++
	if s.RTTms <= core.PLms {
		p.within[ct]++
	}
	return nil
}

func (p *continentsPass) Merge(other scan.Pass) error {
	o := other.(*continentsPass)
	for ct, n := range o.counts {
		p.counts[ct] += n
	}
	for ct, n := range o.within {
		p.within[ct] += n
	}
	return nil
}

// continentsOp tallies delivered samples per continent; it rebuilds the
// probe census from the stored seed to map probe IDs.
func continentsOp(store *results.Store, pred *colf.Predicate, workers int) ([]string, error) {
	meta := store.Meta()
	w, err := world.Build(world.Config{Seed: meta.Seed, Probes: meta.Probes})
	if err != nil {
		return nil, err
	}
	merged, err := scanWith(store, pred, workers, func() scan.Pass {
		return &continentsPass{
			idx:    w.Index,
			counts: make(map[geo.Continent]uint64),
			within: make(map[geo.Continent]uint64),
		}
	})
	if err != nil {
		return nil, err
	}
	p := merged.(*continentsPass)
	lines := []string{"continent       samples     within-PL"}
	for _, ct := range geo.Continents() {
		if p.counts[ct] == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("%-14s %9d  %11.1f%%",
			ct.String(), p.counts[ct], 100*float64(p.within[ct])/float64(p.counts[ct])))
	}
	return lines, nil
}

// filterPass buffers the samples matching the continent filter; shards
// concatenate in file order on merge, so the re-export preserves the
// original sample order exactly.
type filterPass struct {
	idx  *core.Index
	ct   geo.Continent
	kept []results.Sample
}

func (p *filterPass) Observe(s results.Sample) error {
	if got, ok := p.idx.Continent(s.ProbeID); ok && got == p.ct {
		p.kept = append(p.kept, s)
	}
	return nil
}

func (p *filterPass) Merge(other scan.Pass) error {
	p.kept = append(p.kept, other.(*filterPass).kept...)
	return nil
}

// parseWindowRange parses the -window "since,until" pair; either side
// may be empty for an open end. An empty flag falls back to the
// -since/-until pair so both spellings work.
func parseWindowRange(window, since, until string) (time.Time, time.Time, error) {
	if window != "" {
		parts := strings.SplitN(window, ",", 2)
		if len(parts) != 2 {
			return time.Time{}, time.Time{}, fmt.Errorf("bad -window %q (want \"since,until\")", window)
		}
		since, until = parts[0], parts[1]
	}
	var sinceT, untilT time.Time
	var err error
	if since != "" {
		if sinceT, err = time.Parse(time.RFC3339, since); err != nil {
			return sinceT, untilT, fmt.Errorf("bad window start: %w", err)
		}
	}
	if until != "" {
		if untilT, err = time.Parse(time.RFC3339, until); err != nil {
			return sinceT, untilT, fmt.Errorf("bad window end: %w", err)
		}
	}
	if !sinceT.IsZero() && !untilT.IsZero() && !sinceT.Before(untilT) {
		return sinceT, untilT, fmt.Errorf("window start must precede end")
	}
	return sinceT, untilT, nil
}

// windowOp materializes one [since, until) window through the temporal
// aggregate index: it opens (or builds) samples.tix next to the
// samples file, composes the window from pre-merged segment nodes plus
// edge-block decodes, and prints the per-continent distributions along
// with exactly how the window was assembled. The sample rows outside
// the edge blocks are never decoded.
func windowOp(store *results.Store, window, since, until string) ([]string, error) {
	if store.Format() != results.FormatBinary {
		return nil, fmt.Errorf("window op needs a binary store (samples.tix indexes sealed blocks); convert first")
	}
	sinceT, untilT, err := parseWindowRange(window, since, until)
	if err != nil {
		return nil, err
	}
	meta := store.Meta()
	w, err := world.Build(world.Config{Seed: meta.Seed, Probes: meta.Probes})
	if err != nil {
		return nil, err
	}
	r, closer, err := colf.Open(store.SamplesPath())
	if err != nil {
		return nil, err
	}
	blocks := append([]colf.BlockInfo(nil), r.Blocks()...)
	closer.Close()

	sf, err := os.Open(store.SamplesPath())
	if err != nil {
		return nil, err
	}
	defer sf.Close()

	ix, err := tix.Open(store.TixPath(), tix.Binding{
		PassSet: tix.PassSetCDF,
		Index:   w.Index.Fingerprint(),
		Meta:    core.MetaFingerprint(meta),
	}, blocks, nil)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	before := ix.Nodes()
	buildStart := time.Now()
	if err := ix.Extend(sf, blocks, w.Index); err != nil {
		return nil, err
	}
	if built := ix.Nodes() - before; built > 0 {
		log.Printf("index: appended %d segment nodes over %d sealed blocks in %v",
			built, len(blocks), time.Since(buildStart).Round(time.Millisecond))
	}

	queryStart := time.Now()
	res, err := ix.View().Query(context.Background(), sf, blocks, sinceT, untilT, w.Index)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(queryStart)

	bound := func(t time.Time) string {
		if t.IsZero() {
			return "open"
		}
		return t.Format(time.RFC3339)
	}
	st := res.Stats
	lines := []string{
		fmt.Sprintf("window: [%s, %s) in %v", bound(sinceT), bound(untilT), elapsed.Round(time.Microsecond)),
		fmt.Sprintf("index: %d nodes composed (%d blocks pre-merged), %d edge blocks decoded, %d stray, %d past frontier, %d skipped",
			st.Nodes, st.NodeBlocks, st.EdgeBlocks, st.StrayBlocks, st.FrontierBlocks, st.SkippedBlocks),
		fmt.Sprintf("rows: %d total, %d delivered, %d resolved samples", res.Rows, res.Delivered, res.Samples()),
	}
	if res.Samples() == 0 {
		return append(lines, "no resolved samples in window"), nil
	}
	lines = append(lines, "continent       samples       p50       p95       p99")
	for _, ct := range geo.Continents() {
		d := res.ByContinent[ct]
		if d == nil || d.N() == 0 {
			continue
		}
		p50, err := d.Quantile(0.50)
		if err != nil {
			return nil, err
		}
		p95, err := d.Quantile(0.95)
		if err != nil {
			return nil, err
		}
		p99, err := d.Quantile(0.99)
		if err != nil {
			return nil, err
		}
		lines = append(lines, fmt.Sprintf("%-14s %8d %8.1fms %8.1fms %8.1fms", ct.String(), d.N(), p50, p95, p99))
	}
	return lines, nil
}

// filterOp re-exports the samples of one continent into a new dataset,
// keeping the source's storage format.
func filterOp(store *results.Store, pred *colf.Predicate, continent, out string, workers int) ([]string, error) {
	if continent == "" || out == "" {
		return nil, fmt.Errorf("filter needs -continent and -out")
	}
	ct, err := geo.ParseContinent(continent)
	if err != nil {
		return nil, err
	}
	meta := store.Meta()
	w, err := world.Build(world.Config{Seed: meta.Seed, Probes: meta.Probes})
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(out); err == nil {
		return nil, fmt.Errorf("output %s already exists", out)
	}
	merged, err := scanWith(store, pred, workers, func() scan.Pass {
		return &filterPass{idx: w.Index, ct: ct}
	})
	if err != nil {
		return nil, err
	}
	kept := merged.(*filterPass).kept
	_, sink, err := results.Create(out, meta, store.Format())
	if err != nil {
		return nil, err
	}
	for _, s := range kept {
		if err := sink.Write(s); err != nil {
			sink.Close()
			return nil, err
		}
	}
	n := sink.Count()
	if err := sink.Close(); err != nil {
		return nil, err
	}
	return []string{fmt.Sprintf("wrote %d %s samples to %s", n, ct, out)}, nil
}
