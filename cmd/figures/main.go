// Command figures regenerates a single figure of the paper, either from a
// stored campaign dataset (produced by cmd/shears) or from a freshly
// synthesized small campaign.
//
// Usage:
//
//	figures -fig 4 -data ./dataset     # from a stored campaign
//	figures -fig 7                     # synthesize a small campaign first
//	figures -fig 1                     # dataset-independent figures
//	figures -fig 6 -data ./dataset -workers 8
//
// Dataset-independent figures: 1, 2, 3a, 3b. Dataset figures: 4, 5, 6, 7, 8.
// Stored datasets are read with the parallel scanner (-workers shards the
// file; the output is identical for any worker count); synthesized campaigns
// are analyzed in memory. When the dataset carries an analysis snapshot
// (samples.snap, maintained by cmd/shears), the scan resumes from it and
// decodes only blocks appended since — -snapshot off forces a cold scan.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/scan"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig      = flag.String("fig", "", "figure to render: 1, 2, 3a, 3b, 4, 5, 6, 7, 8")
		data     = flag.String("data", "", "stored dataset directory (optional)")
		probes   = flag.Int("probes", 400, "probe count when synthesizing")
		seed     = flag.Uint64("seed", 1, "world seed when synthesizing")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of text (figures 1, 4, 5, 6, 7, 8)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "scan worker count for stored datasets")
		snapMode = flag.String("snapshot", "auto", "analysis snapshot mode for stored datasets: auto (on for binary stores), on, off")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	)
	flag.Parse()
	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	lines, err := render(*fig, *data, *probes, *seed, *workers, *snapMode, *asCSV)
	if err != nil {
		if errors.Is(err, core.ErrEmptyStore) {
			log.Fatalf("dataset %s holds no samples yet — run cmd/shears against it first, then retry", *data)
		}
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	if *memProf != "" {
		if err := obs.WriteHeapProfile(*memProf); err != nil {
			log.Fatal(err)
		}
	}
}

func render(fig, data string, probes int, seed uint64, workers int, snapMode string, asCSV bool) ([]string, error) {
	if asCSV {
		return renderCSV(fig, data, probes, seed, workers, snapMode)
	}
	ctx := context.Background()
	switch fig {
	case "1":
		_, lines, err := figures.Figure1(ctx, seed)
		return lines, err
	case "2":
		return figures.Figure2(apps.Paper())
	}

	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	switch fig {
	case "3a":
		return figures.Figure3a(w.Catalog)
	case "3b":
		return figures.Figure3b(w.Probes)
	}

	d, err := loadOrSynthesize(ctx, w, data, workers, snapMode)
	if err != nil {
		return nil, err
	}
	switch fig {
	case "4":
		rep, err := d.proximity(w.Index)
		if err != nil {
			return nil, err
		}
		return figures.Figure4Lines(rep), nil
	case "5":
		rep, err := d.minRTT(w.Index)
		if err != nil {
			return nil, err
		}
		return figures.CDFLines(rep)
	case "6":
		rep, err := d.fullDist(w.Index)
		if err != nil {
			return nil, err
		}
		return figures.CDFLines(rep)
	case "7":
		rep, err := d.lastMile(w.Index)
		if err != nil {
			return nil, err
		}
		return figures.Figure7Lines(rep)
	case "8":
		rep7, err := d.lastMile(w.Index)
		if err != nil {
			return nil, err
		}
		_, lines, err := figures.Figure8(rep7, apps.Paper())
		return lines, err
	default:
		return nil, fmt.Errorf("unknown figure %q (want one of %v)", fig, figures.Names())
	}
}

// dataset is a figure's sample source: a stored campaign scanned in
// parallel, or a freshly synthesized in-memory one analyzed sequentially.
type dataset struct {
	store   *results.Store // non-nil when loaded from disk
	mem     *results.Memory
	start   time.Time
	workers int
	snap    *core.SnapshotOptions // non-nil: seed scans from the analysis snapshot
	suite   *core.SuiteReport     // cached snapshot-seeded suite report
}

// loadOrSynthesize opens the stored dataset, or runs a fresh test-scale
// campaign against the supplied world.
func loadOrSynthesize(ctx context.Context, w *world.World, data string, workers int, snapMode string) (*dataset, error) {
	if data != "" {
		store, err := results.Open(data)
		if err != nil {
			return nil, err
		}
		d := &dataset{store: store, start: store.Meta().Start, workers: workers}
		enabled, err := snapshotEnabled(snapMode, store.Format())
		if err != nil {
			return nil, err
		}
		if enabled {
			d.snap = &core.SnapshotOptions{
				Path:          store.SnapshotPath(),
				RefreshFactor: core.DefaultRefreshFactor,
			}
		}
		return d, nil
	}
	cfg := atlas.TestCampaign()
	var mem results.Memory
	if _, err := w.Platform.RunCampaign(ctx, cfg, mem.Add); err != nil {
		return nil, err
	}
	return &dataset{mem: &mem, start: cfg.Start}, nil
}

// runPass feeds one analysis pass with every sample: a parallel byte-range
// scan for stored datasets, a sequential walk for in-memory ones. The
// merged result is identical either way.
func runPass[P core.Pass](d *dataset, newPass func() (P, error)) (P, error) {
	if d.store == nil {
		p, err := newPass()
		if err != nil {
			return p, err
		}
		return p, core.RunPasses(d.mem, p)
	}
	var passes []P
	st, err := scan.File(context.Background(), scan.Config{
		Path:    d.store.SamplesPath(),
		Workers: d.workers,
		NewPasses: func(int) ([]scan.Pass, error) {
			p, err := newPass()
			if err != nil {
				return nil, err
			}
			passes = append(passes, p)
			return []scan.Pass{p}, nil
		},
	})
	if err != nil {
		var zero P
		return zero, err
	}
	log.Printf("scan: %d samples in %v (%.1f MB/s, %d workers)",
		st.Samples, st.Duration.Round(time.Millisecond), st.MBPerSec(), st.Workers)
	return passes[0], nil
}

// snapshotEnabled resolves the -snapshot mode against the store's
// format: auto enables snapshots for binary stores, whose block
// boundaries make resumed scans strict delta decodes.
func snapshotEnabled(mode string, format results.Format) (bool, error) {
	switch mode {
	case "auto", "":
		return format == results.FormatBinary, nil
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("invalid -snapshot %q (want auto, on, or off)", mode)
}

// suiteReport runs the snapshot-seeded fused scan once per invocation and
// caches it: every figure reads from the same suite, and the snapshot
// means only blocks appended since the last analysis are decoded.
func (d *dataset) suiteReport(idx *core.Index) (*core.SuiteReport, error) {
	if d.suite != nil {
		return d.suite, nil
	}
	rep, st, err := core.ScanStoreSnap(context.Background(), d.store, idx, d.start, 7*24*time.Hour, d.workers, nil, *d.snap)
	if err != nil {
		return nil, err
	}
	log.Printf("scan: %d samples in %v (%.1f MB/s, %d workers)",
		st.Samples, st.Duration.Round(time.Millisecond), st.MBPerSec(), st.Workers)
	if st.Binary {
		log.Printf("scan: scanned %d/%d blocks (snapshot covered %d)",
			st.BlocksRead, st.BlocksTotal, st.PrefixBlocks)
	}
	d.suite = rep
	return rep, nil
}

func (d *dataset) proximity(idx *core.Index) (*core.ProximityReport, error) {
	if d.snap != nil {
		rep, err := d.suiteReport(idx)
		if err != nil {
			return nil, err
		}
		return rep.Proximity, nil
	}
	p, err := runPass(d, func() (*core.ProximityPass, error) { return core.NewProximityPass(idx), nil })
	if err != nil {
		return nil, err
	}
	return p.Report()
}

func (d *dataset) minRTT(idx *core.Index) (*core.CDFReport, error) {
	if d.snap != nil {
		rep, err := d.suiteReport(idx)
		if err != nil {
			return nil, err
		}
		return rep.MinRTT, nil
	}
	p, err := runPass(d, func() (*core.MinRTTPass, error) { return core.NewMinRTTPass(idx), nil })
	if err != nil {
		return nil, err
	}
	return p.Report()
}

func (d *dataset) fullDist(idx *core.Index) (*core.CDFReport, error) {
	if d.snap != nil {
		rep, err := d.suiteReport(idx)
		if err != nil {
			return nil, err
		}
		return rep.FullDist, nil
	}
	p, err := runPass(d, func() (*core.FullDistPass, error) { return core.NewFullDistPass(idx), nil })
	if err != nil {
		return nil, err
	}
	return p.Report()
}

func (d *dataset) lastMile(idx *core.Index) (*core.LastMileReport, error) {
	if d.snap != nil {
		rep, err := d.suiteReport(idx)
		if err != nil {
			return nil, err
		}
		return rep.LastMile, nil
	}
	p, err := runPass(d, func() (*core.LastMilePass, error) {
		return core.NewLastMilePass(idx, d.start, 7*24*time.Hour)
	})
	if err != nil {
		return nil, err
	}
	return p.Report()
}

// renderCSV emits the machine-readable form of a figure.
func renderCSV(fig, data string, probes int, seed uint64, workers int, snapMode string) ([]string, error) {
	ctx := context.Background()
	var buf bytes.Buffer
	if fig == "1" {
		series, _, err := figures.Figure1(ctx, seed)
		if err != nil {
			return nil, err
		}
		if err := figures.Figure1CSV(&buf, series); err != nil {
			return nil, err
		}
		return splitLines(buf.String()), nil
	}

	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	d, err := loadOrSynthesize(ctx, w, data, workers, snapMode)
	if err != nil {
		return nil, err
	}
	switch fig {
	case "4":
		rep, err := d.proximity(w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.Figure4CSV(&buf, rep); err != nil {
			return nil, err
		}
	case "5":
		rep, err := d.minRTT(w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.CDFCSV(&buf, rep); err != nil {
			return nil, err
		}
	case "6":
		rep, err := d.fullDist(w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.CDFCSV(&buf, rep); err != nil {
			return nil, err
		}
	case "7":
		rep, err := d.lastMile(w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.Figure7CSV(&buf, rep); err != nil {
			return nil, err
		}
	case "8":
		rep7, err := d.lastMile(w.Index)
		if err != nil {
			return nil, err
		}
		rep, _, err := figures.Figure8(rep7, apps.Paper())
		if err != nil {
			return nil, err
		}
		if err := figures.Figure8CSV(&buf, rep); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("figure %q has no CSV form", fig)
	}
	return splitLines(buf.String()), nil
}

func splitLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}
