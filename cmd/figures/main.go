// Command figures regenerates a single figure of the paper, either from a
// stored campaign dataset (produced by cmd/shears) or from a freshly
// synthesized small campaign.
//
// Usage:
//
//	figures -fig 4 -data ./dataset     # from a stored campaign
//	figures -fig 7                     # synthesize a small campaign first
//	figures -fig 1                     # dataset-independent figures
//
// Dataset-independent figures: 1, 2, 3a, 3b. Dataset figures: 4, 5, 6, 7, 8.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/figures"
	"repro/internal/results"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig    = flag.String("fig", "", "figure to render: 1, 2, 3a, 3b, 4, 5, 6, 7, 8")
		data   = flag.String("data", "", "stored dataset directory (optional)")
		probes = flag.Int("probes", 400, "probe count when synthesizing")
		seed   = flag.Uint64("seed", 1, "world seed when synthesizing")
		asCSV  = flag.Bool("csv", false, "emit CSV instead of text (figures 1, 4, 5, 6, 7, 8)")
	)
	flag.Parse()
	lines, err := render(*fig, *data, *probes, *seed, *asCSV)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

func render(fig, data string, probes int, seed uint64, asCSV bool) ([]string, error) {
	if asCSV {
		return renderCSV(fig, data, probes, seed)
	}
	ctx := context.Background()
	switch fig {
	case "1":
		_, lines, err := figures.Figure1(ctx, seed)
		return lines, err
	case "2":
		return figures.Figure2(apps.Paper())
	}

	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	switch fig {
	case "3a":
		return figures.Figure3a(w.Catalog)
	case "3b":
		return figures.Figure3b(w.Probes)
	}

	src, start, err := loadOrSynthesize(ctx, w, data)
	if err != nil {
		return nil, err
	}
	switch fig {
	case "4":
		_, lines, err := figures.Figure4(src, w.Index)
		return lines, err
	case "5":
		_, lines, err := figures.Figure5(src, w.Index)
		return lines, err
	case "6":
		_, lines, err := figures.Figure6(src, w.Index)
		return lines, err
	case "7":
		_, lines, err := figures.Figure7(src, w.Index, start)
		return lines, err
	case "8":
		rep7, _, err := figures.Figure7(src, w.Index, start)
		if err != nil {
			return nil, err
		}
		_, lines, err := figures.Figure8(rep7, apps.Paper())
		return lines, err
	default:
		return nil, fmt.Errorf("unknown figure %q (want one of %v)", fig, figures.Names())
	}
}

// loadOrSynthesize opens the stored dataset, or runs a fresh test-scale
// campaign against the supplied world.
func loadOrSynthesize(ctx context.Context, w *world.World, data string) (results.Source, time.Time, error) {
	if data != "" {
		store, err := results.Open(data)
		if err != nil {
			return nil, time.Time{}, err
		}
		return store, store.Meta().Start, nil
	}
	cfg := atlas.TestCampaign()
	var mem results.Memory
	if _, err := w.Platform.RunCampaign(ctx, cfg, mem.Add); err != nil {
		return nil, time.Time{}, err
	}
	return &mem, cfg.Start, nil
}

// renderCSV emits the machine-readable form of a figure.
func renderCSV(fig, data string, probes int, seed uint64) ([]string, error) {
	ctx := context.Background()
	var buf bytes.Buffer
	if fig == "1" {
		series, _, err := figures.Figure1(ctx, seed)
		if err != nil {
			return nil, err
		}
		if err := figures.Figure1CSV(&buf, series); err != nil {
			return nil, err
		}
		return splitLines(buf.String()), nil
	}

	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	src, start, err := loadOrSynthesize(ctx, w, data)
	if err != nil {
		return nil, err
	}
	switch fig {
	case "4":
		rep, _, err := figures.Figure4(src, w.Index)
		if err != nil {
			return nil, err
		}
		err = figures.Figure4CSV(&buf, rep)
		if err != nil {
			return nil, err
		}
	case "5":
		rep, _, err := figures.Figure5(src, w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.CDFCSV(&buf, rep); err != nil {
			return nil, err
		}
	case "6":
		rep, _, err := figures.Figure6(src, w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.CDFCSV(&buf, rep); err != nil {
			return nil, err
		}
	case "7":
		rep, _, err := figures.Figure7(src, w.Index, start)
		if err != nil {
			return nil, err
		}
		if err := figures.Figure7CSV(&buf, rep); err != nil {
			return nil, err
		}
	case "8":
		rep7, _, err := figures.Figure7(src, w.Index, start)
		if err != nil {
			return nil, err
		}
		rep, _, err := figures.Figure8(rep7, apps.Paper())
		if err != nil {
			return nil, err
		}
		if err := figures.Figure8CSV(&buf, rep); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("figure %q has no CSV form", fig)
	}
	return splitLines(buf.String()), nil
}

func splitLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}
