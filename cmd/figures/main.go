// Command figures regenerates a single figure of the paper, either from a
// stored campaign dataset (produced by cmd/shears) or from a freshly
// synthesized small campaign.
//
// Usage:
//
//	figures -fig 4 -data ./dataset     # from a stored campaign
//	figures -fig 7                     # synthesize a small campaign first
//	figures -fig 1                     # dataset-independent figures
//	figures -fig 6 -data ./dataset -workers 8
//
// Dataset-independent figures: 1, 2, 3a, 3b. Dataset figures: 4, 5, 6, 7, 8.
// Stored datasets are read with the parallel scanner (-workers shards the
// file; the output is identical for any worker count); synthesized campaigns
// are analyzed in memory. When the dataset carries an analysis snapshot
// (samples.snap, maintained by cmd/shears), the scan resumes from it and
// decodes only blocks appended since — -snapshot off forces a cold scan.
// -rowscan forces the scanner's legacy per-row path on binary stores,
// bypassing the columnar batch kernels; the output is byte-identical
// either way (scripts/check.sh pins this), so the flag exists as the
// equivalence control and escape hatch.
//
// Observability: the command emits structured leveled logs (-log-format
// text|json, -log-level) on stderr, and -status-addr serves live run state
// over HTTP while the render executes: GET /metrics (Prometheus text),
// GET /debug/events (flight-recorder dump of recent log events), and
// GET /api/v1/progress (scan throughput and snapshot cache counters).
// Renders against a stored dataset also write <data>/run.figures.json — a
// manifest with the run ID, build version, flags, per-stage durations,
// scan throughput and snapshot coverage.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/scan"
	"repro/internal/snap"
	"repro/internal/world"
)

// options bundles the command's knobs (one field per flag).
type options struct {
	fig        string
	data       string
	probes     int
	seed       uint64
	csv        bool
	workers    int
	snapMode   string
	rowScan    bool
	cpuProfile string
	memProfile string
	statusAddr string // live status HTTP listener; empty disables
	logFormat  string // structured log encoding: text or json
	logLevel   string // minimum log level: debug, info, warn, error

	// Test hooks (unexported, zero in production).
	stdout       io.Writer         // figure line destination; nil means stdout
	logDst       io.Writer         // structured log destination; nil means stderr
	statusReady  func(addr string) // called with the bound status address
	beforeRender func()            // called after the status server is up, before rendering
}

// manifestFile is the run manifest's name inside the dataset dir. It is
// distinct from cmd/shears' run.json so a render never clobbers the
// campaign's own manifest.
const manifestFile = "run.figures.json"

// flightRecorderSize is how many recent log events /debug/events retains.
const flightRecorderSize = 256

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var o options
	flag.StringVar(&o.fig, "fig", "", "figure to render: 1, 2, 3a, 3b, 4, 5, 6, 7, 8")
	flag.StringVar(&o.data, "data", "", "stored dataset directory (optional)")
	flag.IntVar(&o.probes, "probes", 400, "probe count when synthesizing")
	flag.Uint64Var(&o.seed, "seed", 1, "world seed when synthesizing")
	flag.BoolVar(&o.csv, "csv", false, "emit CSV instead of text (figures 1, 4, 5, 6, 7, 8)")
	flag.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0), "scan worker count for stored datasets")
	flag.StringVar(&o.snapMode, "snapshot", "auto", "analysis snapshot mode for stored datasets: auto (on for binary stores), on, off")
	flag.BoolVar(&o.rowScan, "rowscan", false, "force the per-row scan path on binary stores (batch kernels off; output is identical)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write an end-of-run heap profile to this file")
	flag.StringVar(&o.statusAddr, "status-addr", "", "serve live run status (/metrics, /debug/events, /api/v1/progress) on this address")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log encoding: text (logfmt) or json")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.Parse()
	if err := run(o); err != nil {
		if errors.Is(err, core.ErrEmptyStore) {
			log.Fatalf("dataset %s holds no samples yet — run cmd/shears against it first, then retry", o.data)
		}
		log.Fatal(err)
	}
}

// runEnv carries the run's telemetry plumbing into the render path. A
// nil *runEnv (as the unit tests use) disables all of it.
type runEnv struct {
	root        *obs.Span
	log         *obs.Logger
	scanMetrics *scan.Metrics
	snapMetrics *snap.Metrics
	manifest    *obs.RunManifest
}

func (e *runEnv) span() *obs.Span {
	if e == nil {
		return nil
	}
	return e.root
}

func (e *runEnv) logger() *obs.Logger {
	if e == nil {
		return nil
	}
	return e.log
}

func (e *runEnv) scanInstruments() *scan.Metrics {
	if e == nil {
		return nil
	}
	return e.scanMetrics
}

func (e *runEnv) snapInstruments() *snap.Metrics {
	if e == nil {
		return nil
	}
	return e.snapMetrics
}

// noteScan records one completed dataset scan: the manifest's throughput
// and snapshot coverage, plus the scan-completion log events.
func (e *runEnv) noteScan(st scan.Stats) {
	if e == nil {
		return
	}
	if e.manifest != nil {
		e.manifest.Samples += st.Samples
		if st.Duration > 0 {
			e.manifest.SamplesPerSec = st.SamplesPerSec()
		}
		if st.Binary {
			e.manifest.Snapshot = &obs.SnapshotCoverage{
				PrefixBlocks: st.PrefixBlocks, BlocksRead: st.BlocksRead, BlocksTotal: st.BlocksTotal,
			}
		}
	}
	e.log.Info("scan complete",
		"samples", st.Samples, "duration", st.Duration.Round(time.Millisecond),
		"mb_per_sec", st.MBPerSec(), "workers", st.Workers)
	if st.Binary {
		e.log.Info("snapshot coverage",
			"blocks_read", st.BlocksRead, "blocks_total", st.BlocksTotal,
			"prefix_blocks", st.PrefixBlocks)
	}
}

func run(o options) (err error) {
	start := time.Now()
	level, err := obs.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	logFormat, err := obs.ParseLogFormat(o.logFormat)
	if err != nil {
		return err
	}
	logDst := o.logDst
	if logDst == nil {
		logDst = os.Stderr
	}
	stdout := o.stdout
	if stdout == nil {
		stdout = os.Stdout
	}
	rec := obs.NewRecorder(flightRecorderSize)
	logger := obs.NewLogger(logDst,
		obs.WithLogFormat(logFormat), obs.WithLogLevel(level), obs.WithRecorder(rec),
	).With("figures")
	if o.cpuProfile != "" {
		stop, perr := obs.StartCPUProfile(o.cpuProfile)
		if perr != nil {
			return perr
		}
		defer func() {
			if serr := stop(); serr != nil && err == nil {
				err = serr
			}
		}()
	}
	reg := obs.NewRegistry()
	scanMetrics := scan.NewMetrics(reg)
	snapMetrics := snap.NewMetrics(reg)
	workers := o.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	manifest := obs.NewRunManifest("figures", start)
	manifest.Flags = obs.FlagsFromSet(flag.CommandLine)
	manifest.Workers = workers
	root := obs.NewTrace("figures.run")
	root.SetAttr("fig", o.fig)
	env := &runEnv{root: root, log: logger, scanMetrics: scanMetrics, snapMetrics: snapMetrics, manifest: manifest}
	defer func() {
		root.End()
		// The manifest lands inside the dataset dir; dataset-independent
		// renders (and runs that failed to open the store) write none.
		if o.data == "" {
			return
		}
		if _, serr := os.Stat(o.data); serr != nil {
			return
		}
		manifest.Finish(time.Now())
		manifest.SetStagesFromDump(root.Dump())
		if werr := manifest.Write(filepath.Join(o.data, manifestFile)); werr != nil && err == nil {
			err = werr
		}
	}()

	// Live status: /metrics, /debug/events and /api/v1/progress serve the
	// run's state while the render executes.
	if o.statusAddr != "" {
		ln, lerr := net.Listen("tcp", o.statusAddr)
		if lerr != nil {
			return lerr
		}
		srv := &http.Server{Handler: obs.NewStatusMux(reg, rec, figuresProgress(manifest, start, o.fig, snapMetrics, scanMetrics))}
		go srv.Serve(ln)
		defer srv.Close()
		logger.Info("status server listening", "addr", ln.Addr().String())
		if o.statusReady != nil {
			o.statusReady(ln.Addr().String())
		}
	}

	logger.Info("rendering figure", "fig", o.fig, "data", o.data, "csv", o.csv)
	if o.beforeRender != nil {
		o.beforeRender()
	}
	lines, err := render(o, env)
	if err != nil {
		return err
	}
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	logger.Info("figure rendered",
		"fig", o.fig, "lines", len(lines), "elapsed", time.Since(start).Round(time.Millisecond))
	if o.memProfile != "" {
		return obs.WriteHeapProfile(o.memProfile)
	}
	return nil
}

// figuresProgress builds the /api/v1/progress payload function: a
// per-request snapshot of the scan throughput and snapshot cache counters.
func figuresProgress(manifest *obs.RunManifest, start time.Time, fig string, sm *snap.Metrics, scm *scan.Metrics) func() any {
	type snapshotProgress struct {
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		Invalidations uint64 `json:"invalidations"`
		Writes        uint64 `json:"writes"`
	}
	type scanProgress struct {
		Scans         uint64  `json:"scans"`
		Samples       uint64  `json:"samples"`
		SamplesPerSec float64 `json:"samples_per_sec"`
	}
	type progress struct {
		RunID         string           `json:"run_id"`
		Figure        string           `json:"figure"`
		UptimeSeconds float64          `json:"uptime_seconds"`
		Snapshot      snapshotProgress `json:"snapshot"`
		Scan          scanProgress     `json:"scan"`
	}
	return func() any {
		return progress{
			RunID:         manifest.RunID,
			Figure:        fig,
			UptimeSeconds: time.Since(start).Seconds(),
			Snapshot: snapshotProgress{
				Hits:          sm.Hits.Value(),
				Misses:        sm.Misses.Value(),
				Invalidations: sm.Invalidations.Value(),
				Writes:        sm.Writes.Value(),
			},
			Scan: scanProgress{
				Scans:         scm.Scans.Value(),
				Samples:       scm.Samples.Value(),
				SamplesPerSec: scm.SamplesPerSec.Value(),
			},
		}
	}
}

func render(o options, env *runEnv) ([]string, error) {
	if o.csv {
		return renderCSV(o, env)
	}
	ctx := obs.ContextWith(context.Background(), env.span())
	switch o.fig {
	case "1":
		_, lines, err := figures.Figure1(ctx, o.seed)
		return lines, err
	case "2":
		return figures.Figure2(apps.Paper())
	}

	w, err := buildWorld(o, env)
	if err != nil {
		return nil, err
	}
	switch o.fig {
	case "3a":
		return figures.Figure3a(w.Catalog)
	case "3b":
		return figures.Figure3b(w.Probes)
	}

	d, err := loadOrSynthesize(ctx, w, o, env)
	if err != nil {
		return nil, err
	}
	fs := env.span().Child("figure:" + o.fig)
	defer fs.End()
	switch o.fig {
	case "4":
		rep, err := d.proximity(w.Index)
		if err != nil {
			return nil, err
		}
		return figures.Figure4Lines(rep), nil
	case "5":
		rep, err := d.minRTT(w.Index)
		if err != nil {
			return nil, err
		}
		return figures.CDFLines(rep)
	case "6":
		rep, err := d.fullDist(w.Index)
		if err != nil {
			return nil, err
		}
		return figures.CDFLines(rep)
	case "7":
		rep, err := d.lastMile(w.Index)
		if err != nil {
			return nil, err
		}
		return figures.Figure7Lines(rep)
	case "8":
		rep7, err := d.lastMile(w.Index)
		if err != nil {
			return nil, err
		}
		_, lines, err := figures.Figure8(rep7, apps.Paper())
		return lines, err
	default:
		return nil, fmt.Errorf("unknown figure %q (want one of %v)", o.fig, figures.Names())
	}
}

// buildWorld synthesizes the world under its own stage span.
func buildWorld(o options, env *runEnv) (*world.World, error) {
	s := env.span().Child("world.build")
	defer s.End()
	w, err := world.Build(world.Config{Seed: o.seed, Probes: o.probes})
	if err != nil {
		return nil, err
	}
	env.logger().Info("world built",
		"probes", w.Probes.Len(), "regions", w.Catalog.Len(), "seed", o.seed)
	return w, nil
}

// dataset is a figure's sample source: a stored campaign scanned in
// parallel, or a freshly synthesized in-memory one analyzed sequentially.
type dataset struct {
	store   *results.Store // non-nil when loaded from disk
	mem     *results.Memory
	start   time.Time
	workers int
	rowScan bool                  // force the per-row scan path (-rowscan)
	snap    *core.SnapshotOptions // non-nil: seed scans from the analysis snapshot
	suite   *core.SuiteReport     // cached snapshot-seeded suite report
	env     *runEnv               // telemetry plumbing; nil disables
}

// loadOrSynthesize opens the stored dataset, or runs a fresh test-scale
// campaign against the supplied world.
func loadOrSynthesize(ctx context.Context, w *world.World, o options, env *runEnv) (*dataset, error) {
	if o.data != "" {
		store, err := results.Open(o.data)
		if err != nil {
			return nil, err
		}
		d := &dataset{store: store, start: store.Meta().Start, workers: o.workers, rowScan: o.rowScan, env: env}
		enabled, err := snapshotEnabled(o.snapMode, store.Format())
		if err != nil {
			return nil, err
		}
		if enabled {
			d.snap = &core.SnapshotOptions{
				Path:          store.SnapshotPath(),
				RefreshFactor: core.DefaultRefreshFactor,
				RowScan:       o.rowScan,
				Metrics:       env.snapInstruments(),
				Log:           env.logger().With("snap"),
			}
		}
		env.logger().Info("dataset opened",
			"dir", o.data, "format", store.Format().String(), "snapshot", enabled)
		return d, nil
	}
	cfg := atlas.TestCampaign()
	s := env.span().Child("campaign.synthesize")
	defer s.End()
	var mem results.Memory
	if _, err := w.Platform.RunCampaign(obs.ContextWith(ctx, s), cfg, mem.Add); err != nil {
		return nil, err
	}
	return &dataset{mem: &mem, start: cfg.Start, env: env}, nil
}

// runPass feeds one analysis pass with every sample: a parallel byte-range
// scan for stored datasets, a sequential walk for in-memory ones. The
// merged result is identical either way.
func runPass[P core.Pass](d *dataset, newPass func() (P, error)) (P, error) {
	if d.store == nil {
		p, err := newPass()
		if err != nil {
			return p, err
		}
		return p, core.RunPasses(d.mem, p)
	}
	var passes []P
	st, err := scan.File(obs.ContextWith(context.Background(), d.env.span()), scan.Config{
		Path:    d.store.SamplesPath(),
		Workers: d.workers,
		RowScan: d.rowScan,
		NewPasses: func(int) ([]scan.Pass, error) {
			p, err := newPass()
			if err != nil {
				return nil, err
			}
			passes = append(passes, p)
			return []scan.Pass{p}, nil
		},
		Metrics: d.env.scanInstruments(),
		Log:     d.env.logger(),
	})
	if err != nil {
		var zero P
		return zero, err
	}
	d.env.noteScan(st)
	return passes[0], nil
}

// snapshotEnabled resolves the -snapshot mode against the store's
// format: auto enables snapshots for binary stores, whose block
// boundaries make resumed scans strict delta decodes.
func snapshotEnabled(mode string, format results.Format) (bool, error) {
	switch mode {
	case "auto", "":
		return format == results.FormatBinary, nil
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("invalid -snapshot %q (want auto, on, or off)", mode)
}

// suiteReport runs the snapshot-seeded fused scan once per invocation and
// caches it: every figure reads from the same suite, and the snapshot
// means only blocks appended since the last analysis are decoded.
func (d *dataset) suiteReport(idx *core.Index) (*core.SuiteReport, error) {
	if d.suite != nil {
		return d.suite, nil
	}
	ctx := obs.ContextWith(context.Background(), d.env.span())
	rep, st, err := core.ScanStoreSnap(ctx, d.store, idx, d.start, 7*24*time.Hour, d.workers, d.env.scanInstruments(), *d.snap)
	if err != nil {
		return nil, err
	}
	d.env.noteScan(st)
	d.suite = rep
	return rep, nil
}

func (d *dataset) proximity(idx *core.Index) (*core.ProximityReport, error) {
	if d.snap != nil {
		rep, err := d.suiteReport(idx)
		if err != nil {
			return nil, err
		}
		return rep.Proximity, nil
	}
	p, err := runPass(d, func() (*core.ProximityPass, error) { return core.NewProximityPass(idx), nil })
	if err != nil {
		return nil, err
	}
	return p.Report()
}

func (d *dataset) minRTT(idx *core.Index) (*core.CDFReport, error) {
	if d.snap != nil {
		rep, err := d.suiteReport(idx)
		if err != nil {
			return nil, err
		}
		return rep.MinRTT, nil
	}
	p, err := runPass(d, func() (*core.MinRTTPass, error) { return core.NewMinRTTPass(idx), nil })
	if err != nil {
		return nil, err
	}
	return p.Report()
}

func (d *dataset) fullDist(idx *core.Index) (*core.CDFReport, error) {
	if d.snap != nil {
		rep, err := d.suiteReport(idx)
		if err != nil {
			return nil, err
		}
		return rep.FullDist, nil
	}
	p, err := runPass(d, func() (*core.FullDistPass, error) { return core.NewFullDistPass(idx), nil })
	if err != nil {
		return nil, err
	}
	return p.Report()
}

func (d *dataset) lastMile(idx *core.Index) (*core.LastMileReport, error) {
	if d.snap != nil {
		rep, err := d.suiteReport(idx)
		if err != nil {
			return nil, err
		}
		return rep.LastMile, nil
	}
	p, err := runPass(d, func() (*core.LastMilePass, error) {
		return core.NewLastMilePass(idx, d.start, 7*24*time.Hour)
	})
	if err != nil {
		return nil, err
	}
	return p.Report()
}

// renderCSV emits the machine-readable form of a figure.
func renderCSV(o options, env *runEnv) ([]string, error) {
	ctx := obs.ContextWith(context.Background(), env.span())
	var buf bytes.Buffer
	if o.fig == "1" {
		series, _, err := figures.Figure1(ctx, o.seed)
		if err != nil {
			return nil, err
		}
		if err := figures.Figure1CSV(&buf, series); err != nil {
			return nil, err
		}
		return splitLines(buf.String()), nil
	}

	w, err := buildWorld(o, env)
	if err != nil {
		return nil, err
	}
	d, err := loadOrSynthesize(ctx, w, o, env)
	if err != nil {
		return nil, err
	}
	fs := env.span().Child("figure:" + o.fig)
	defer fs.End()
	switch o.fig {
	case "4":
		rep, err := d.proximity(w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.Figure4CSV(&buf, rep); err != nil {
			return nil, err
		}
	case "5":
		rep, err := d.minRTT(w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.CDFCSV(&buf, rep); err != nil {
			return nil, err
		}
	case "6":
		rep, err := d.fullDist(w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.CDFCSV(&buf, rep); err != nil {
			return nil, err
		}
	case "7":
		rep, err := d.lastMile(w.Index)
		if err != nil {
			return nil, err
		}
		if err := figures.Figure7CSV(&buf, rep); err != nil {
			return nil, err
		}
	case "8":
		rep7, err := d.lastMile(w.Index)
		if err != nil {
			return nil, err
		}
		rep, _, err := figures.Figure8(rep7, apps.Paper())
		if err != nil {
			return nil, err
		}
		if err := figures.Figure8CSV(&buf, rep); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("figure %q has no CSV form", o.fig)
	}
	return splitLines(buf.String()), nil
}

func splitLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}
