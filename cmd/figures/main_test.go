package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/world"
)

func TestRenderDatasetIndependentFigures(t *testing.T) {
	for _, fig := range []string{"1", "2", "3a", "3b"} {
		lines, err := render(options{fig: fig, probes: 200, seed: 1, snapMode: "auto"}, nil)
		if err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(lines) == 0 {
			t.Errorf("fig %s produced no output", fig)
		}
	}
}

func TestRenderUnknownFigure(t *testing.T) {
	_, err := render(options{fig: "42", probes: 200, seed: 1, snapMode: "auto"}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Errorf("unknown figure: %v", err)
	}
}

// buildDataset writes a tiny binary-format campaign dataset for the
// stored-dataset tests and returns its directory.
func buildDataset(t *testing.T, seed uint64, probes int) (string, *world.World) {
	t.Helper()
	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		t.Fatal(err)
	}
	cfg := atlas.TestCampaign()
	dir := t.TempDir()
	_, sink, err := results.Create(dir, cfg.Meta(seed, w.Probes.Len(), w.Catalog.Len()), results.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Platform.RunCampaign(context.Background(), cfg, sink.Write); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, w
}

func TestRenderFromStoredDataset(t *testing.T) {
	dir, _ := buildDataset(t, 2, 200)
	opts := func(fig string, workers int, snapMode string) options {
		return options{fig: fig, data: dir, probes: 200, seed: 2, workers: workers, snapMode: snapMode}
	}
	for _, fig := range []string{"4", "5", "6", "7", "8"} {
		lines, err := render(opts(fig, 4, "auto"), nil)
		if err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(lines) == 0 {
			t.Errorf("fig %s produced no output", fig)
		}
	}
	// The parallel scan is worker-count invariant.
	serial, err := render(opts("6", 1, "auto"), nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := render(opts("6", 7, "auto"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(serial, "\n") != strings.Join(parallel, "\n") {
		t.Error("figure 6 output differs between workers=1 and workers=7")
	}
	// The renders above left a snapshot behind (binary store, -snapshot
	// auto); a forced cold scan must produce the identical figure.
	cold, err := render(opts("6", 3, "off"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(cold, "\n") != strings.Join(parallel, "\n") {
		t.Error("figure 6 output differs between snapshot and cold scans")
	}
	// Missing dataset directory surfaces an error.
	if _, err := render(options{fig: "4", data: dir + "/nope", probes: 200, seed: 2, workers: 4, snapMode: "auto"}, nil); err == nil {
		t.Error("missing dataset accepted")
	}
}

// TestRenderRowScanEquivalence pins -rowscan: the forced per-row path
// renders identical figures to the batch kernels, on both the
// snapshot-seeded and cold scan routes.
func TestRenderRowScanEquivalence(t *testing.T) {
	dir, _ := buildDataset(t, 2, 200)
	for _, fig := range []string{"4", "7"} {
		for _, snapMode := range []string{"off", "auto"} {
			o := options{fig: fig, data: dir, probes: 200, seed: 2, workers: 4, snapMode: snapMode}
			batch, err := render(o, nil)
			if err != nil {
				t.Fatalf("fig %s snapshot=%s: %v", fig, snapMode, err)
			}
			o.rowScan = true
			row, err := render(o, nil)
			if err != nil {
				t.Fatalf("fig %s snapshot=%s rowscan: %v", fig, snapMode, err)
			}
			if strings.Join(batch, "\n") != strings.Join(row, "\n") {
				t.Errorf("fig %s snapshot=%s: -rowscan output differs from batch", fig, snapMode)
			}
		}
	}
}

func TestRenderSynthesizes(t *testing.T) {
	lines, err := render(options{fig: "4", probes: 200, seed: 1, snapMode: "auto"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lines[0], "countries:") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRenderCSV(t *testing.T) {
	for _, fig := range []string{"1", "4", "7"} {
		lines, err := render(options{fig: fig, probes: 200, seed: 1, snapMode: "auto", csv: true}, nil)
		if err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(lines) < 2 || !strings.Contains(lines[0], ",") {
			t.Errorf("fig %s CSV output malformed: %v", fig, lines[:1])
		}
	}
	if _, err := render(options{fig: "2", probes: 200, seed: 1, snapMode: "auto", csv: true}, nil); err == nil {
		t.Error("figure without CSV form accepted")
	}
}

// TestRunWritesManifest checks the run.figures.json evidence bundle a
// stored-dataset render leaves behind: identity, per-stage durations,
// scan throughput, and snapshot coverage.
func TestRunWritesManifest(t *testing.T) {
	dir, _ := buildDataset(t, 2, 200)
	err := run(options{
		fig: "5", data: dir, probes: 200, seed: 2, workers: 4, snapMode: "auto",
		stdout: io.Discard, logDst: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := obs.ReadRunManifest(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	if m.Binary != "figures" || m.RunID == "" || m.GoVersion == "" {
		t.Errorf("manifest identity: %+v", m)
	}
	if m.Samples == 0 || m.SamplesPerSec <= 0 {
		t.Errorf("manifest throughput: samples=%d samples/s=%v", m.Samples, m.SamplesPerSec)
	}
	if m.Workers != 4 {
		t.Errorf("manifest workers = %d, want 4", m.Workers)
	}
	if m.DurationMs <= 0 || m.End.Before(m.Start) {
		t.Errorf("manifest window: start=%v end=%v duration=%vms", m.Start, m.End, m.DurationMs)
	}
	if m.Snapshot == nil || m.Snapshot.BlocksTotal == 0 {
		t.Errorf("manifest lacks snapshot coverage: %+v", m.Snapshot)
	}
	stages := map[string]bool{}
	for _, s := range m.Stages {
		if s.DurationMs < 0 {
			t.Errorf("stage %q has negative duration", s.Name)
		}
		stages[s.Name] = true
	}
	for _, want := range []string{"world.build", "scan", "figure:5"} {
		if !stages[want] {
			t.Errorf("manifest lacks stage %q; has %v", want, m.Stages)
		}
	}
}

// TestRunServesStatusEndpoints polls the -status-addr endpoints while a
// render is in flight: the beforeRender hook parks the run so /metrics,
// /debug/events, and /api/v1/progress are demonstrably served mid-run.
func TestRunServesStatusEndpoints(t *testing.T) {
	dir, _ := buildDataset(t, 2, 200)
	ready := make(chan string, 1)
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(options{
			fig: "6", data: dir, probes: 200, seed: 2, workers: 2, snapMode: "auto",
			stdout: io.Discard, logDst: io.Discard,
			statusAddr: "127.0.0.1:0",
			statusReady: func(addr string) {
				select {
				case ready <- addr:
				default:
				}
			},
			beforeRender: func() { <-release },
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("run finished before the status server came up: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("status server never came up")
	}

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return b
	}

	var p struct {
		RunID  string `json:"run_id"`
		Figure string `json:"figure"`
	}
	if err := json.Unmarshal(get("/api/v1/progress"), &p); err != nil {
		t.Fatalf("progress is not JSON: %v", err)
	}
	if p.RunID == "" || p.Figure != "6" {
		t.Errorf("progress = %+v", p)
	}

	metrics := string(get("/metrics"))
	for _, want := range []string{"scan_total", "scan_samples_total", "snap_hits_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("mid-run /metrics lacks %q", want)
		}
	}

	var d struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Component string `json:"component"`
			Msg       string `json:"msg"`
		} `json:"events"`
	}
	if err := json.Unmarshal(get("/debug/events"), &d); err != nil {
		t.Fatalf("events dump is not JSON: %v", err)
	}
	var sawRender bool
	for _, e := range d.Events {
		if e.Msg == "rendering figure" && e.Component == "figures" {
			sawRender = true
		}
	}
	if d.Total == 0 || !sawRender {
		t.Errorf("flight recorder lacks the rendering event: %+v", d)
	}

	unblock()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run did not finish")
	}
}
