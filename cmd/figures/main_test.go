package main

import (
	"context"
	"strings"
	"testing"

	"repro/internal/atlas"
	"repro/internal/results"
	"repro/internal/world"
)

func TestRenderDatasetIndependentFigures(t *testing.T) {
	for _, fig := range []string{"1", "2", "3a", "3b"} {
		lines, err := render(fig, "", 200, 1, 0, "auto", false)
		if err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(lines) == 0 {
			t.Errorf("fig %s produced no output", fig)
		}
	}
}

func TestRenderUnknownFigure(t *testing.T) {
	if _, err := render("42", "", 200, 1, 0, "auto", false); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Errorf("unknown figure: %v", err)
	}
}

func TestRenderFromStoredDataset(t *testing.T) {
	// Build a tiny dataset on disk, then render figure 4 from it.
	w, err := world.Build(world.Config{Seed: 2, Probes: 200})
	if err != nil {
		t.Fatal(err)
	}
	cfg := atlas.TestCampaign()
	dir := t.TempDir()
	_, sink, err := results.Create(dir, cfg.Meta(2, w.Probes.Len(), w.Catalog.Len()), results.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Platform.RunCampaign(context.Background(), cfg, sink.Write); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	for _, fig := range []string{"4", "5", "6", "7", "8"} {
		lines, err := render(fig, dir, 200, 2, 4, "auto", false)
		if err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(lines) == 0 {
			t.Errorf("fig %s produced no output", fig)
		}
	}
	// The parallel scan is worker-count invariant.
	serial, err := render("6", dir, 200, 2, 1, "auto", false)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := render("6", dir, 200, 2, 7, "auto", false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(serial, "\n") != strings.Join(parallel, "\n") {
		t.Error("figure 6 output differs between workers=1 and workers=7")
	}
	// The renders above left a snapshot behind (binary store, -snapshot
	// auto); a forced cold scan must produce the identical figure.
	cold, err := render("6", dir, 200, 2, 3, "off", false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(cold, "\n") != strings.Join(parallel, "\n") {
		t.Error("figure 6 output differs between snapshot and cold scans")
	}
	// Missing dataset directory surfaces an error.
	if _, err := render("4", dir+"/nope", 200, 2, 4, "auto", false); err == nil {
		t.Error("missing dataset accepted")
	}
}

func TestRenderSynthesizes(t *testing.T) {
	lines, err := render("4", "", 200, 1, 0, "auto", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lines[0], "countries:") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRenderCSV(t *testing.T) {
	for _, fig := range []string{"1", "4", "7"} {
		lines, err := render(fig, "", 200, 1, 0, "auto", true)
		if err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(lines) < 2 || !strings.Contains(lines[0], ",") {
			t.Errorf("fig %s CSV output malformed: %v", fig, lines[:1])
		}
	}
	if _, err := render("2", "", 200, 1, 0, "auto", true); err == nil {
		t.Error("figure without CSV form accepted")
	}
}
