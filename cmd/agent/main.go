// Command agent is a cluster worker: it registers with a campaign
// coordinator (shears -cluster, or atlasd -cluster-out), rebuilds the
// world locally from the plan's seed, then loops leasing shards and
// shipping each completed (shard, round) cell back over resumable
// CRC-checked uploads until the campaign is fully merged.
//
// Usage:
//
//	agent -coordinator http://127.0.0.1:8080            # auto-named agent
//	agent -coordinator http://127.0.0.1:8080 -id edge-3 # stable identity
//
// Any number of agents may serve one coordinator; the merged dataset is
// byte-identical regardless of how many run or when they join. An agent
// that dies mid-campaign loses nothing durable — the coordinator
// revokes its lease after the heartbeat TTL and re-grants the shard
// from its upload watermark.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// options bundles the agent's knobs (one field per flag).
type options struct {
	coordinator string
	id          string
	chunkBytes  int
	logFormat   string
	logLevel    string

	// logDst overrides the structured log destination in tests.
	logDst io.Writer
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("agent: ")
	var o options
	flag.StringVar(&o.coordinator, "coordinator", "http://127.0.0.1:8080", "coordinator base URL")
	flag.StringVar(&o.id, "id", "", "agent identity (default hostname-pid)")
	flag.IntVar(&o.chunkBytes, "chunk-bytes", cluster.DefaultChunkBytes, "upload chunk size in bytes")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log encoding: text (logfmt) or json")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}

// run builds and executes the agent (factored from main for tests).
func run(ctx context.Context, o options) error {
	level, err := obs.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	format, err := obs.ParseLogFormat(o.logFormat)
	if err != nil {
		return err
	}
	logDst := o.logDst
	if logDst == nil {
		logDst = os.Stderr
	}
	logger := obs.NewLogger(logDst, obs.WithLogFormat(format), obs.WithLogLevel(level))
	id := o.id
	if id == "" {
		host, herr := os.Hostname()
		if herr != nil {
			host = "agent"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ag, err := cluster.NewAgent(cluster.AgentConfig{
		ID:         id,
		BaseURL:    o.coordinator,
		ChunkBytes: o.chunkBytes,
		Log:        logger,
	})
	if err != nil {
		return err
	}
	return ag.Run(ctx)
}
