package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTraceByCountry(t *testing.T) {
	lines, err := run(0, "NG", "", 400, 1, "2019-09-01T12:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"probe", "traceroute to", "segments:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("output missing %q:\n%s", want, joined)
		}
	}
}

func TestTraceExplicitTargets(t *testing.T) {
	lines, err := run(0, "DE", "Amazon/eu-central-1", 400, 1, "2019-09-01T12:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "Amazon/eu-central-1") {
		t.Error("explicit region not traced")
	}
}

func TestTraceErrors(t *testing.T) {
	cases := []struct {
		name    string
		probeID int
		country string
		region  string
		at      string
	}{
		{"bad time", 0, "DE", "", "not-a-time"},
		{"unknown probe", 999999, "DE", "", "2019-09-01T12:00:00Z"},
		{"unknown country", 0, "ZZ", "", "2019-09-01T12:00:00Z"},
		{"unknown region", 0, "DE", "Nope/x", "2019-09-01T12:00:00Z"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := run(tc.probeID, tc.country, tc.region, 400, 1, tc.at); err == nil {
				t.Error("invalid input accepted")
			}
		})
	}
}

// TestSummarizeBothFormats renders the stage table from the same span
// tree written in both trace encodings shears emits.
func TestSummarizeBothFormats(t *testing.T) {
	root := obs.NewTrace("shears.run")
	c := root.Child("world.build")
	c.End()
	c = root.Child("campaign")
	c.End()
	root.End()

	dir := t.TempDir()
	legacy := filepath.Join(dir, "trace.json")
	chrome := filepath.Join(dir, "trace.chrome.json")
	for path, write := range map[string]func(w io.Writer) error{
		legacy: root.WriteJSON,
		chrome: root.WriteChromeTrace,
	} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	for _, path := range []string{legacy, chrome} {
		lines, err := summarize(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		joined := strings.Join(lines, "\n")
		for _, want := range []string{`root "shears.run"`, "world.build", "campaign", "stage"} {
			if !strings.Contains(joined, want) {
				t.Errorf("%s summary missing %q:\n%s", path, want, joined)
			}
		}
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := summarize(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := summarize(bad); err == nil {
		t.Error("malformed trace accepted")
	}
}
