package main

import (
	"strings"
	"testing"
)

func TestTraceByCountry(t *testing.T) {
	lines, err := run(0, "NG", "", 400, 1, "2019-09-01T12:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"probe", "traceroute to", "segments:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("output missing %q:\n%s", want, joined)
		}
	}
}

func TestTraceExplicitTargets(t *testing.T) {
	lines, err := run(0, "DE", "Amazon/eu-central-1", 400, 1, "2019-09-01T12:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "Amazon/eu-central-1") {
		t.Error("explicit region not traced")
	}
}

func TestTraceErrors(t *testing.T) {
	cases := []struct {
		name    string
		probeID int
		country string
		region  string
		at      string
	}{
		{"bad time", 0, "DE", "", "not-a-time"},
		{"unknown probe", 999999, "DE", "", "2019-09-01T12:00:00Z"},
		{"unknown country", 0, "ZZ", "", "2019-09-01T12:00:00Z"},
		{"unknown region", 0, "DE", "Nope/x", "2019-09-01T12:00:00Z"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := run(tc.probeID, tc.country, tc.region, 400, 1, tc.at); err == nil {
				t.Error("invalid input accepted")
			}
		})
	}
}
