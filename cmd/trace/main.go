// Command trace prints a traceroute-style transcript for a probe-to-region
// path of the simulated world, locating the delay along the path (§4.3).
// It also summarizes run traces written by cmd/shears -trace.
//
// Usage:
//
//	trace -probe 42 -region 'Amazon/eu-central-1'
//	trace -country NG              # first probe in Nigeria, nearest region
//	trace -summary trace.json      # per-stage wall-time table of a run trace
//
// -summary accepts both trace encodings shears emits: the legacy span-tree
// JSON and the Chrome trace-event JSON (<path>.chrome.json).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cloud"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/route"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trace: ")
	var (
		probeID = flag.Int("probe", 0, "probe ID (0 = pick by -country)")
		country = flag.String("country", "DE", "pick the first probe in this country when -probe is 0")
		region  = flag.String("region", "", "target region address (empty = geographically nearest)")
		probes  = flag.Int("probes", 400, "probe census size")
		seed    = flag.Uint64("seed", 1, "world seed")
		atStr   = flag.String("at", "2019-09-01T12:00:00Z", "sample time (RFC 3339)")
		summary = flag.String("summary", "", "summarize this run trace (legacy or Chrome JSON) instead of tracerouting")
	)
	flag.Parse()
	var lines []string
	var err error
	if *summary != "" {
		lines, err = summarize(*summary)
	} else {
		lines, err = run(*probeID, *country, *region, *probes, *seed, *atStr)
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

// summarize reads a run trace — legacy span-tree JSON or Chrome
// trace-event JSON — and formats its per-stage wall-time table.
func summarize(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := obs.ParseTrace(raw)
	if err != nil {
		return nil, fmt.Errorf("parsing trace %s: %w", path, err)
	}
	wall := time.Duration(d.DurationMs * float64(time.Millisecond))
	lines := []string{fmt.Sprintf("trace %s: root %q, wall %v", path, d.Name, wall.Round(time.Millisecond))}
	return append(lines, obs.FormatStageTable(obs.StageTotals(d), wall)...), nil
}

func run(probeID int, country, region string, probes int, seed uint64, atStr string) ([]string, error) {
	at, err := time.Parse(time.RFC3339, atStr)
	if err != nil {
		return nil, fmt.Errorf("bad -at: %w", err)
	}
	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	pr, err := pickProbe(w, probeID, country)
	if err != nil {
		return nil, err
	}
	r, err := pickRegion(w, pr, region)
	if err != nil {
		return nil, err
	}
	path, err := w.Platform.Path(pr, r)
	if err != nil {
		return nil, err
	}
	tr, err := route.Expand(path, pr.Site(), r.Addr(), at)
	if err != nil {
		return nil, err
	}
	lines := []string{fmt.Sprintf("probe %d: %s, %s, %s last mile", pr.ID, pr.Country, pr.Continent, pr.Access)}
	lines = append(lines, tr.Format()...)
	if !tr.Lost {
		lines = append(lines, fmt.Sprintf("segments: access=%.1fms transit=%.1fms backbone=%.1fms",
			tr.SegmentMs(route.HopAccess), tr.SegmentMs(route.HopTransit), tr.SegmentMs(route.HopBackbone)))
	}
	return lines, nil
}

func pickProbe(w *world.World, probeID int, country string) (*probe.Probe, error) {
	if probeID != 0 {
		pr, ok := w.Probes.Lookup(probeID)
		if !ok {
			return nil, fmt.Errorf("unknown probe %d", probeID)
		}
		if pr.Privileged() {
			return nil, fmt.Errorf("probe %d is privileged and excluded from measurements", probeID)
		}
		return pr, nil
	}
	for _, pr := range w.Probes.Public() {
		if pr.Country == country {
			return pr, nil
		}
	}
	return nil, fmt.Errorf("no public probe in %q", country)
}

func pickRegion(w *world.World, pr *probe.Probe, region string) (*cloud.Region, error) {
	if region == "" {
		r := w.Catalog.Nearest(pr.Location)
		if r == nil {
			return nil, fmt.Errorf("empty catalog")
		}
		return r, nil
	}
	r, ok := w.Catalog.Lookup(region)
	if !ok {
		return nil, fmt.Errorf("unknown region %q", region)
	}
	return r, nil
}
