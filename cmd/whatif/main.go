// Command whatif runs the §5 counterfactual scenarios: how the
// wired/wireless gap and the edge feasibility zone move if the last mile
// improves (promised 5G, early 5G, bufferbloat eliminated).
//
// Usage:
//
//	whatif                      # all scenarios, compact world
//	whatif -probes 800 -days 30
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/atlas"
	"repro/internal/whatif"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whatif: ")
	var (
		probes = flag.Int("probes", 400, "probe census size")
		seed   = flag.Uint64("seed", 1, "world seed")
		days   = flag.Int("days", 30, "campaign length in days")
	)
	flag.Parse()
	lines, err := run(*probes, *seed, *days)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

func run(probes int, seed uint64, days int) ([]string, error) {
	campaign := atlas.TestCampaign()
	if days > 0 {
		campaign.End = campaign.Start.Add(time.Duration(days) * 24 * time.Hour)
	}
	cfg := whatif.Config{Seed: seed, Probes: probes, Campaign: campaign}
	rep, err := whatif.Run(context.Background(), cfg,
		whatif.Baseline(), whatif.FiveGEarly(), whatif.FiveG(), whatif.NoBufferbloat())
	if err != nil {
		return nil, err
	}
	lines := rep.Format()
	for _, o := range rep.Outcomes {
		lines = append(lines, fmt.Sprintf("%s zone: %v", o.Scenario, o.InZone))
	}
	return lines, nil
}
