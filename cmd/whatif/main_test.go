package main

import (
	"strings"
	"testing"
)

func TestRunProducesAllScenarios(t *testing.T) {
	lines, err := run(250, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"baseline", "5g-early", "5g-promised", "no-bufferbloat", "zone:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsBadCensus(t *testing.T) {
	if _, err := run(0, 1, 7); err == nil {
		t.Error("zero probes accepted")
	}
}
