package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRunRemotePrintsFigures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fig := strings.TrimPrefix(r.URL.Path, "/api/v1/figures/")
		w.Header().Set("Etag", `"snap-1"`)
		w.Write([]byte("figure " + fig + " body\n"))
	}))
	defer srv.Close()

	var out strings.Builder
	if err := runRemote(srv.URL+"/", &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"=== Figure 4 (proximity to the cloud) ===",
		"figure 4 body",
		"=== Figure 5 (min RTT CDF by continent) ===",
		"=== Figure 6 (all pings to closest DC) ===",
		"=== Figure 7 (wired vs wireless) ===",
		"figure 7 body",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "warning:") {
		t.Errorf("unexpected snapshot warning with a single ETag:\n%s", got)
	}
}

func TestRunRemoteWarnsOnSnapshotAdvance(t *testing.T) {
	n := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n++
		if n > 2 {
			w.Header().Set("Etag", `"snap-2"`)
		} else {
			w.Header().Set("Etag", `"snap-1"`)
		}
		w.Write([]byte("body\n"))
	}))
	defer srv.Close()

	var out strings.Builder
	if err := runRemote(srv.URL, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warning: serving snapshot advanced mid-fetch") {
		t.Errorf("expected mid-fetch warning:\n%s", out.String())
	}
}

func TestRunRemoteSurfacesServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"snapshot not yet published"}`))
	}))
	defer srv.Close()

	err := runRemote(srv.URL, &strings.Builder{})
	if err == nil {
		t.Fatal("expected error from 503 response")
	}
	if !strings.Contains(err.Error(), "snapshot not yet published") {
		t.Errorf("error should carry the server's message, got: %v", err)
	}
	if !strings.Contains(err.Error(), "503") {
		t.Errorf("error should carry the status code, got: %v", err)
	}
}
