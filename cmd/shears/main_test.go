package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
)

func TestRunBuildsDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run(options{out: dir, probes: 200, seed: 1, days: 2, quiet: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json")); !os.IsNotExist(err) {
		t.Error("completed run left a checkpoint behind")
	}
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Format() != results.FormatBinary {
		t.Errorf("default store format = %v, want binary", store.Format())
	}
	meta := store.Meta()
	if meta.Probes != 200 || meta.Regions != 101 {
		t.Errorf("meta = %+v", meta)
	}
	n := 0
	if err := store.ForEach(func(results.Sample) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	// 2 days x 8 rounds x ~190 public probes x 2 targets.
	if n < 1000 {
		t.Errorf("dataset has only %d samples", n)
	}
}

func TestRunWithFigures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	// 4 days is enough for every figure including the weekly Fig 7 bins.
	if err := run(options{out: dir, probes: 250, seed: 1, days: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(options{out: t.TempDir(), probes: 0, seed: 1, days: 1, quiet: true}); err == nil {
		t.Error("zero probes accepted")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	figDir := filepath.Join(t.TempDir(), "figs")
	if err := run(options{out: dir, probes: 250, seed: 1, days: 7, quiet: true, figDir: figDir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"figure1.csv", "figure1.svg", "figure4.csv", "figure5.csv",
		"figure5.svg", "figure6.csv", "figure6.svg", "figure7.csv",
		"figure7.svg", "figure8.csv",
	} {
		info, err := os.Stat(filepath.Join(figDir, name))
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

// TestRunWritesTrace is the campaign-scale telemetry smoke test: a small
// run with -trace must emit a well-formed span tree whose root covers
// world build -> campaign (with per-round fan-out) -> figure generation.
func TestRunWritesTrace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	// A tiny progress interval exercises the reporter goroutine too.
	if err := run(options{out: dir, probes: 250, seed: 1, days: 4, tracePath: tracePath, progressEvery: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var root obs.SpanDump
	if err := json.Unmarshal(raw, &root); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if root.Name != "shears.run" || root.End.IsZero() || root.DurationMs <= 0 {
		t.Fatalf("bad root span: %+v", root)
	}
	byName := map[string]obs.SpanDump{}
	for _, c := range root.Children {
		byName[c.Name] = c
	}
	for _, want := range []string{"world.build", "campaign", "results.flush", "figures"} {
		c, ok := byName[want]
		if !ok {
			t.Errorf("root lacks %q child; has %d children", want, len(root.Children))
			continue
		}
		if c.End.IsZero() {
			t.Errorf("%q span not closed", want)
		}
	}
	camp := byName["campaign"]
	if len(camp.Children) != 32 { // 4 days x 8 rounds
		t.Errorf("campaign has %d round spans, want 32", len(camp.Children))
	}
	var samples float64
	for _, r := range camp.Children {
		if r.Name != "round" {
			t.Errorf("unexpected campaign child %q", r.Name)
		}
		samples += r.Attrs["samples"].(float64)
	}
	if samples == 0 {
		t.Error("round spans carry no samples")
	}
	figs := byName["figures"]
	if len(figs.Children) == 0 {
		t.Error("figures span has no children")
	}
	var sawScan bool
	for _, c := range figs.Children {
		if c.Name == "scan" {
			sawScan = true
			if c.Attrs["samples"].(float64) == 0 {
				t.Error("scan span carries no samples")
			}
			continue
		}
		if !strings.HasPrefix(c.Name, "figure:") {
			t.Errorf("unexpected figures child %q", c.Name)
		}
	}
	if !sawScan {
		t.Error("figures span lacks the fused dataset scan child")
	}
}

// TestRunWorkerCountInvariance is the end-to-end determinism check: the
// same flags with different -workers produce byte-identical datasets,
// in both storage formats.
func TestRunWorkerCountInvariance(t *testing.T) {
	for _, tc := range []struct {
		format string
		file   string
	}{{"", "samples.bin"}, {"jsonl", "samples.jsonl"}} {
		read := func(workers int) []byte {
			dir := filepath.Join(t.TempDir(), "ds")
			if err := run(options{out: dir, probes: 200, seed: 3, days: 2, quiet: true, workers: workers, format: tc.format}); err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(dir, tc.file))
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		serial := read(1)
		if parallel := read(7); !bytes.Equal(serial, parallel) {
			t.Errorf("format=%q: workers=7 dataset differs from workers=1", tc.format)
		}
	}
}

func TestRunResumeErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	// Nothing to resume: no checkpoint exists.
	err := run(options{out: dir, probes: 200, seed: 1, days: 1, quiet: true, resume: true})
	if !errors.Is(err, engine.ErrNoCheckpoint) {
		t.Fatalf("resume without checkpoint: err = %v, want ErrNoCheckpoint", err)
	}

	// A checkpoint from different campaign parameters must be refused.
	if err := run(options{out: dir, probes: 200, seed: 1, days: 1, quiet: true}); err != nil {
		t.Fatal(err)
	}
	cp := engine.Checkpoint{
		Version: 1, Fingerprint: "deadbeefdeadbeef", Workers: 2,
		Round: 3, Samples: 10, SinkOffset: 100,
	}
	if err := cp.Save(filepath.Join(dir, "checkpoint.json")); err != nil {
		t.Fatal(err)
	}
	err = run(options{out: dir, probes: 200, seed: 9, days: 1, quiet: true, resume: true})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("fingerprint mismatch not refused: %v", err)
	}
}
