package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/results"
)

func TestRunBuildsDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run(dir, 200, 1, false, 2, true, ""); err != nil {
		t.Fatal(err)
	}
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta := store.Meta()
	if meta.Probes != 200 || meta.Regions != 101 {
		t.Errorf("meta = %+v", meta)
	}
	n := 0
	if err := store.ForEach(func(results.Sample) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	// 2 days x 8 rounds x ~190 public probes x 2 targets.
	if n < 1000 {
		t.Errorf("dataset has only %d samples", n)
	}
}

func TestRunWithFigures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	// 4 days is enough for every figure including the weekly Fig 7 bins.
	if err := run(dir, 250, 1, false, 4, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(t.TempDir(), 0, 1, false, 1, true, ""); err == nil {
		t.Error("zero probes accepted")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	figDir := filepath.Join(t.TempDir(), "figs")
	if err := run(dir, 250, 1, false, 7, true, figDir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"figure1.csv", "figure1.svg", "figure4.csv", "figure5.csv",
		"figure5.svg", "figure6.csv", "figure6.svg", "figure7.csv",
		"figure7.svg", "figure8.csv",
	} {
		info, err := os.Stat(filepath.Join(figDir, name))
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}
