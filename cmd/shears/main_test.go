package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
)

func TestRunBuildsDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run(options{out: dir, probes: 200, seed: 1, days: 2, quiet: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json")); !os.IsNotExist(err) {
		t.Error("completed run left a checkpoint behind")
	}
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Format() != results.FormatBinary {
		t.Errorf("default store format = %v, want binary", store.Format())
	}
	meta := store.Meta()
	if meta.Probes != 200 || meta.Regions != 101 {
		t.Errorf("meta = %+v", meta)
	}
	n := 0
	if err := store.ForEach(func(results.Sample) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	// 2 days x 8 rounds x ~190 public probes x 2 targets.
	if n < 1000 {
		t.Errorf("dataset has only %d samples", n)
	}
}

func TestRunBuildsTemporalIndex(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run(options{out: dir, probes: 200, seed: 1, days: 2, quiet: true}); err != nil {
		t.Fatal(err)
	}
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(store.TixPath())
	if err != nil {
		t.Fatalf("binary run built no temporal index: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("temporal index is empty")
	}

	off := filepath.Join(t.TempDir(), "ds")
	if err := run(options{out: off, probes: 200, seed: 1, days: 2, quiet: true, tix: "off"}); err != nil {
		t.Fatal(err)
	}
	offStore, err := results.Open(off)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(offStore.TixPath()); !os.IsNotExist(err) {
		t.Errorf("-tix off still produced an index (err=%v)", err)
	}

	if err := run(options{out: t.TempDir(), probes: 200, seed: 1, days: 1, quiet: true, tix: "bogus"}); err == nil {
		t.Error("invalid -tix mode accepted")
	}
}

func TestRunWithFigures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	// 4 days is enough for every figure including the weekly Fig 7 bins.
	if err := run(options{out: dir, probes: 250, seed: 1, days: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(options{out: t.TempDir(), probes: 0, seed: 1, days: 1, quiet: true}); err == nil {
		t.Error("zero probes accepted")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	figDir := filepath.Join(t.TempDir(), "figs")
	if err := run(options{out: dir, probes: 250, seed: 1, days: 7, quiet: true, figDir: figDir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"figure1.csv", "figure1.svg", "figure4.csv", "figure5.csv",
		"figure5.svg", "figure6.csv", "figure6.svg", "figure7.csv",
		"figure7.svg", "figure8.csv",
	} {
		info, err := os.Stat(filepath.Join(figDir, name))
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

// TestRunWritesTrace is the campaign-scale telemetry smoke test: a small
// run with -trace must emit a well-formed span tree whose root covers
// world build -> campaign (with per-round fan-out) -> figure generation.
func TestRunWritesTrace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	// A tiny progress interval exercises the reporter goroutine too.
	if err := run(options{out: dir, probes: 250, seed: 1, days: 4, tracePath: tracePath, progressEvery: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var root obs.SpanDump
	if err := json.Unmarshal(raw, &root); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if root.Name != "shears.run" || root.End.IsZero() || root.DurationMs <= 0 {
		t.Fatalf("bad root span: %+v", root)
	}
	byName := map[string]obs.SpanDump{}
	for _, c := range root.Children {
		byName[c.Name] = c
	}
	for _, want := range []string{"world.build", "campaign", "results.flush", "figures"} {
		c, ok := byName[want]
		if !ok {
			t.Errorf("root lacks %q child; has %d children", want, len(root.Children))
			continue
		}
		if c.End.IsZero() {
			t.Errorf("%q span not closed", want)
		}
	}
	camp := byName["campaign"]
	if len(camp.Children) != 32 { // 4 days x 8 rounds
		t.Errorf("campaign has %d round spans, want 32", len(camp.Children))
	}
	var samples float64
	for _, r := range camp.Children {
		if r.Name != "round" {
			t.Errorf("unexpected campaign child %q", r.Name)
		}
		samples += r.Attrs["samples"].(float64)
	}
	if samples == 0 {
		t.Error("round spans carry no samples")
	}
	figs := byName["figures"]
	if len(figs.Children) == 0 {
		t.Error("figures span has no children")
	}
	var sawScan bool
	for _, c := range figs.Children {
		if c.Name == "scan" {
			sawScan = true
			if c.Attrs["samples"].(float64) == 0 {
				t.Error("scan span carries no samples")
			}
			continue
		}
		if !strings.HasPrefix(c.Name, "figure:") {
			t.Errorf("unexpected figures child %q", c.Name)
		}
	}
	if !sawScan {
		t.Error("figures span lacks the fused dataset scan child")
	}
}

// TestRunServesStatusEndpoints polls the -status-addr endpoints while
// the campaign executes: /metrics, /debug/events, and /api/v1/progress
// must all serve real data mid-run. The onRound hook blocks the engine's
// merger after the second merged round, so the polls below observe a
// campaign that is genuinely still running.
func TestRunServesStatusEndpoints(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	ready := make(chan string, 1)
	midRun := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(options{
			out: dir, probes: 250, seed: 1, days: 2, quiet: true, workers: 2,
			logDst:     io.Discard,
			statusAddr: "127.0.0.1:0",
			statusReady: func(addr string) {
				select {
				case ready <- addr:
				default:
				}
			},
			onRound: func(round int, _ uint64) {
				if round == 1 {
					close(midRun)
					<-release
				}
			},
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("run finished before the status server came up: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("status server never came up")
	}
	select {
	case <-midRun:
	case err := <-errCh:
		t.Fatalf("run finished before reaching round 2: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("campaign never reached round 2")
	}

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return b
	}

	var p struct {
		RunID    string `json:"run_id"`
		Campaign struct {
			RoundsDone  float64 `json:"rounds_done"`
			RoundsTotal float64 `json:"rounds_total"`
			Samples     uint64  `json:"samples"`
		} `json:"campaign"`
	}
	if b := get("/api/v1/progress"); true {
		if err := json.Unmarshal(b, &p); err != nil {
			t.Fatalf("progress is not JSON: %v\n%s", err, b)
		}
	}
	if p.RunID == "" {
		t.Error("progress lacks a run ID")
	}
	if p.Campaign.RoundsTotal != 16 { // 2 days x 8 rounds
		t.Errorf("rounds_total = %v, want 16", p.Campaign.RoundsTotal)
	}
	if p.Campaign.RoundsDone < 2 || p.Campaign.RoundsDone >= p.Campaign.RoundsTotal {
		t.Errorf("mid-run rounds_done = %v, want in [2, 16)", p.Campaign.RoundsDone)
	}
	if p.Campaign.Samples == 0 {
		t.Error("mid-run progress reports zero samples")
	}

	metrics := string(get("/metrics"))
	for _, want := range []string{"atlas_campaign_rounds_total 16", "engine_rounds_merged", "atlas_campaign_samples_total{"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("mid-run /metrics lacks %q", want)
		}
	}

	var d struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Level     string `json:"level"`
			Component string `json:"component"`
			Msg       string `json:"msg"`
		} `json:"events"`
	}
	if b := get("/debug/events"); true {
		if err := json.Unmarshal(b, &d); err != nil {
			t.Fatalf("events dump is not JSON: %v\n%s", err, b)
		}
	}
	if d.Total == 0 || len(d.Events) == 0 {
		t.Fatalf("mid-run flight recorder is empty: %+v", d)
	}
	var sawWorld bool
	for _, e := range d.Events {
		if e.Msg == "world built" && e.Component == "shears" {
			sawWorld = true
		}
	}
	if !sawWorld {
		t.Errorf("flight recorder lacks the world-built event: %+v", d.Events)
	}

	unblock() // let the merger finish the campaign
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run did not finish")
	}
}

// TestRunWritesManifest checks the run.json evidence bundle: identity,
// flags-independent defaults, per-stage durations, and throughput.
func TestRunWritesManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run(options{out: dir, probes: 200, seed: 1, days: 2, quiet: true, logDst: io.Discard}); err != nil {
		t.Fatal(err)
	}
	m, err := obs.ReadRunManifest(filepath.Join(dir, "run.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Binary != "shears" || m.RunID == "" || m.GoVersion == "" {
		t.Errorf("manifest identity: %+v", m)
	}
	if m.Samples == 0 || m.SamplesPerSec <= 0 {
		t.Errorf("manifest throughput: samples=%d samples/s=%v", m.Samples, m.SamplesPerSec)
	}
	if m.WorldFingerprint == "" || m.Workers < 1 {
		t.Errorf("manifest workload: fingerprint=%q workers=%d", m.WorldFingerprint, m.Workers)
	}
	if m.DurationMs <= 0 || m.End.Before(m.Start) {
		t.Errorf("manifest window: start=%v end=%v duration=%vms", m.Start, m.End, m.DurationMs)
	}
	stages := map[string]bool{}
	for _, s := range m.Stages {
		if s.DurationMs < 0 {
			t.Errorf("stage %q has negative duration", s.Name)
		}
		stages[s.Name] = true
	}
	for _, want := range []string{"world.build", "campaign", "results.flush"} {
		if !stages[want] {
			t.Errorf("manifest lacks stage %q; has %v", want, m.Stages)
		}
	}
}

// TestRunWritesChromeTrace validates the exported Chrome trace-event
// JSON: the derived .chrome.json file must parse, contain only complete
// (ph "X") events with µs timestamps, and round-trip through ParseTrace.
func TestRunWritesChromeTrace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	if err := run(options{out: dir, probes: 200, seed: 1, days: 2, quiet: true, tracePath: tracePath, logDst: io.Discard}); err != nil {
		t.Fatal(err)
	}
	chromePath := chromeTracePath(tracePath)
	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	names := map[string]bool{}
	for _, e := range ct.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", e.Name, e.Ph)
		}
		if e.Pid < 1 || e.Tid < 1 || e.Ts < 0 || e.Dur < 0 {
			t.Errorf("event %q schema violation: pid=%d tid=%d ts=%v dur=%v", e.Name, e.Pid, e.Tid, e.Ts, e.Dur)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"shears.run", "world.build", "campaign", "round"} {
		if !names[want] {
			t.Errorf("chrome trace lacks %q span", want)
		}
	}
	// The same file must reconstruct into a span tree via ParseTrace.
	d, err := obs.ParseTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "shears.run" {
		t.Errorf("reconstructed root = %q, want shears.run", d.Name)
	}
}

// TestRunWorkerCountInvariance is the end-to-end determinism check: the
// same flags with different -workers produce byte-identical datasets,
// in both storage formats.
func TestRunWorkerCountInvariance(t *testing.T) {
	for _, tc := range []struct {
		format string
		file   string
	}{{"", "samples.bin"}, {"jsonl", "samples.jsonl"}} {
		read := func(workers int) []byte {
			dir := filepath.Join(t.TempDir(), "ds")
			if err := run(options{out: dir, probes: 200, seed: 3, days: 2, quiet: true, workers: workers, format: tc.format}); err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(dir, tc.file))
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		serial := read(1)
		if parallel := read(7); !bytes.Equal(serial, parallel) {
			t.Errorf("format=%q: workers=7 dataset differs from workers=1", tc.format)
		}
	}
}

func TestRunResumeErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	// Nothing to resume: no checkpoint exists.
	err := run(options{out: dir, probes: 200, seed: 1, days: 1, quiet: true, resume: true})
	if !errors.Is(err, engine.ErrNoCheckpoint) {
		t.Fatalf("resume without checkpoint: err = %v, want ErrNoCheckpoint", err)
	}

	// A checkpoint from different campaign parameters must be refused.
	if err := run(options{out: dir, probes: 200, seed: 1, days: 1, quiet: true}); err != nil {
		t.Fatal(err)
	}
	cp := engine.Checkpoint{
		Version: 1, Fingerprint: "deadbeefdeadbeef", Workers: 2,
		Round: 3, Samples: 10, SinkOffset: 100,
	}
	if err := cp.Save(filepath.Join(dir, "checkpoint.json")); err != nil {
		t.Fatal(err)
	}
	err = run(options{out: dir, probes: 200, seed: 9, days: 1, quiet: true, resume: true})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("fingerprint mismatch not refused: %v", err)
	}
}
