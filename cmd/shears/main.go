// Command shears is the end-to-end reproduction driver: it builds the
// world (probes, cloud regions, latency model), runs the measurement
// campaign, writes the dataset to disk, and regenerates every figure of
// the paper from it.
//
// Usage:
//
//	shears -out ./dataset            # test-scale campaign (default)
//	shears -out ./dataset -full      # paper-scale: 9 months, ~3.2M samples
//	shears -out ./dataset -days 60   # custom window
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/figures"
	"repro/internal/results"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shears: ")
	var (
		out    = flag.String("out", "dataset", "output directory for the campaign dataset")
		probes = flag.Int("probes", 3300, "probe census size")
		seed   = flag.Uint64("seed", 1, "world and campaign seed")
		full   = flag.Bool("full", false, "run the paper-scale nine-month campaign")
		days   = flag.Int("days", 0, "override campaign length in days (0 = config default)")
		quiet  = flag.Bool("quiet", false, "skip figure output; only build the dataset")
		figDir = flag.String("figdir", "", "also write figure artifacts (CSV + SVG) into this directory")
	)
	flag.Parse()
	if err := run(*out, *probes, *seed, *full, *days, *quiet, *figDir); err != nil {
		log.Fatal(err)
	}
}

func run(out string, probes int, seed uint64, full bool, days int, quiet bool, figDir string) error {
	start := time.Now()
	w, err := world.Build(world.Config{Seed: seed, Probes: probes})
	if err != nil {
		return err
	}
	cfg := atlas.TestCampaign()
	if full {
		cfg = atlas.PaperCampaign()
	}
	if days > 0 {
		cfg.End = cfg.Start.Add(time.Duration(days) * 24 * time.Hour)
	}
	log.Printf("world: %d probes in %d countries, %d regions, campaign %s..%s",
		w.Probes.Len(), len(w.Probes.Countries()), w.Catalog.Len(),
		cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"))

	meta := cfg.Meta(seed, w.Probes.Len(), w.Catalog.Len())
	store, writer, closeFn, err := results.Create(out, meta)
	if err != nil {
		return err
	}
	n, err := w.Platform.RunCampaign(context.Background(), cfg, writer.Write)
	if err != nil {
		closeFn()
		return err
	}
	if err := closeFn(); err != nil {
		return err
	}
	log.Printf("campaign: %d samples written to %s in %v", n, out, time.Since(start).Round(time.Millisecond))

	if figDir != "" {
		if err := writeArtifacts(figDir, store, w, cfg); err != nil {
			return err
		}
		log.Printf("figure artifacts written to %s", figDir)
	}
	if quiet {
		return nil
	}
	return printFigures(store, w, cfg)
}

// writeArtifacts exports the dataset figures as CSV and SVG files.
func writeArtifacts(dir string, src results.Source, w *world.World, cfg atlas.CampaignConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	series, _, err := figures.Figure1(context.Background(), 1)
	if err != nil {
		return err
	}
	if err := write("figure1.csv", func(f io.Writer) error { return figures.Figure1CSV(f, series) }); err != nil {
		return err
	}
	if err := write("figure1.svg", func(f io.Writer) error { return figures.Figure1SVG(f, series) }); err != nil {
		return err
	}
	rep4, _, err := figures.Figure4(src, w.Index)
	if err != nil {
		return err
	}
	if err := write("figure4.csv", func(f io.Writer) error { return figures.Figure4CSV(f, rep4) }); err != nil {
		return err
	}
	rep5, _, err := figures.Figure5(src, w.Index)
	if err != nil {
		return err
	}
	if err := write("figure5.csv", func(f io.Writer) error { return figures.CDFCSV(f, rep5) }); err != nil {
		return err
	}
	if err := write("figure5.svg", func(f io.Writer) error { return figures.CDFSVG(f, rep5, "Figure 5: min RTT CDF by continent") }); err != nil {
		return err
	}
	rep6, _, err := figures.Figure6(src, w.Index)
	if err != nil {
		return err
	}
	if err := write("figure6.csv", func(f io.Writer) error { return figures.CDFCSV(f, rep6) }); err != nil {
		return err
	}
	if err := write("figure6.svg", func(f io.Writer) error { return figures.CDFSVG(f, rep6, "Figure 6: all pings to closest DC") }); err != nil {
		return err
	}
	rep7, _, err := figures.Figure7(src, w.Index, cfg.Start)
	if err != nil {
		return err
	}
	if err := write("figure7.csv", func(f io.Writer) error { return figures.Figure7CSV(f, rep7) }); err != nil {
		return err
	}
	if err := write("figure7.svg", func(f io.Writer) error { return figures.Figure7SVG(f, rep7, cfg.Start) }); err != nil {
		return err
	}
	rep8, _, err := figures.Figure8(rep7, apps.Paper())
	if err != nil {
		return err
	}
	return write("figure8.csv", func(f io.Writer) error { return figures.Figure8CSV(f, rep8) })
}

func printFigures(src results.Source, w *world.World, cfg atlas.CampaignConfig) error {
	ctx := context.Background()
	emit := func(name string, lines []string) {
		fmt.Printf("\n=== Figure %s ===\n", name)
		for _, l := range lines {
			fmt.Println(l)
		}
	}

	_, l1, err := figures.Figure1(ctx, 1)
	if err != nil {
		return err
	}
	emit("1 (zeitgeist)", l1)

	l2, err := figures.Figure2(apps.Paper())
	if err != nil {
		return err
	}
	emit("2 (application requirements)", l2)

	l3a, err := figures.Figure3a(w.Catalog)
	if err != nil {
		return err
	}
	emit("3a (cloud regions)", l3a)

	l3b, err := figures.Figure3b(w.Probes)
	if err != nil {
		return err
	}
	emit("3b (probes)", l3b)

	_, l4, err := figures.Figure4(src, w.Index)
	if err != nil {
		return err
	}
	emit("4 (proximity to the cloud)", l4)

	_, l5, err := figures.Figure5(src, w.Index)
	if err != nil {
		return err
	}
	emit("5 (min RTT CDF by continent)", l5)

	_, l6, err := figures.Figure6(src, w.Index)
	if err != nil {
		return err
	}
	emit("6 (all pings to closest DC)", l6)

	rep7, l7, err := figures.Figure7(src, w.Index, cfg.Start)
	if err != nil {
		return err
	}
	emit("7 (wired vs wireless)", l7)

	_, l8, err := figures.Figure8(rep7, apps.Paper())
	if err != nil {
		return err
	}
	emit("8 (feasibility zone)", l8)

	// §4.3 and §5 companion tables.
	delayRep, err := delay.WhereIsTheDelay(w.Platform, delay.DefaultConfig())
	if err != nil {
		return err
	}
	emit("§4.3 (where is the delay?)", delayRep.Format())

	provRep, err := core.ProviderComparison(src, w.Index)
	if err != nil {
		return err
	}
	var provLines []string
	for _, row := range provRep.Rows {
		provLines = append(provLines, fmt.Sprintf("%-16s median=%6.1fms p95=%7.1fms loss=%.2f%% (n=%d)",
			row.Provider, row.Summary.Median, row.Summary.P95, 100*row.LossRate, row.Summary.N))
	}
	emit("§4.1 (per-provider reachability)", provLines)

	bwRep, err := bandwidth.Justify(apps.Paper(), bandwidth.Metro(), 0.95)
	if err != nil {
		return err
	}
	emit("§5 (backhaul demand per application)", bwRep.Format())
	return nil
}
