// Command shears is the end-to-end reproduction driver: it builds the
// world (probes, cloud regions, latency model), runs the measurement
// campaign, writes the dataset to disk, and regenerates every figure of
// the paper from it.
//
// Usage:
//
//	shears -out ./dataset            # test-scale campaign (default)
//	shears -out ./dataset -full      # paper-scale: 9 months, ~3.2M samples
//	shears -out ./dataset -days 60   # custom window
//	shears -out ./dataset -workers 8 # shard the campaign across 8 workers
//	shears -out ./dataset -resume    # continue an interrupted run
//	shears -out ./dataset -cluster 3 # distributed control plane, 3 agents
//	shears -remote http://host:8080  # print figures from a live atlasd -serve-data API
//
// The campaign runs on the parallel execution engine (internal/engine):
// -workers shards the probe population across goroutines while keeping
// the output byte-identical to a serial run, and the engine checkpoints
// its progress into <out>/checkpoint.json every -checkpoint-every rounds
// so -resume continues an interrupted run from the last watermark
// instead of restarting.
//
// -cluster N routes the campaign through the distributed control plane
// (internal/cluster) instead of the in-process engine: a loopback
// coordinator owns the sink and the round-major merge, and N in-process
// worker agents register, lease shards, and ship each completed cell
// back over resumable CRC-checked uploads. -cluster-shards fixes the
// partition width (default 8; like -workers, it never changes the
// output bytes). Checkpointing and -resume work identically in this
// mode, and external agents (cmd/agent) may join the printed
// coordinator URL mid-run.
//
// Observability: the driver emits structured leveled logs (-log-format
// text|json, -log-level), prints periodic progress lines (samples/sec,
// ETA, per-continent tallies) every -progress interval while the campaign
// runs, and -trace out.json dumps the span tree of the whole run
// (world build -> campaign rounds -> result write -> figure generation)
// twice: as legacy span JSON at the given path and as Chrome trace-event
// JSON (loadable in Perfetto or chrome://tracing) at <path>.chrome.json.
// -status-addr serves live run state over HTTP while the run executes:
// GET /metrics (Prometheus text), GET /debug/events (flight-recorder
// dump of recent log events), and GET /api/v1/progress (campaign round
// watermarks, queue depths, snapshot and scan counters, ETA). Every run
// also writes <out>/run.json — a manifest with the run ID, build
// version, flags, world fingerprint, per-stage durations and
// throughput. -cpuprofile/-memprofile write pprof profiles of the run.
//
// Analysis snapshots: for binary datasets the driver maintains
// <out>/samples.snap — the serialized merged analysis state, refreshed
// at every campaign checkpoint — so the post-campaign figure scan (and
// any later re-analysis over the grown dataset) decodes only blocks
// appended since the snapshot. -snapshot off disables it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/bandwidth"
	"repro/internal/cluster"
	"repro/internal/colf"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/scan"
	"repro/internal/snap"
	"repro/internal/tix"
	"repro/internal/world"
)

// options bundles the driver's knobs (one field per flag).
type options struct {
	out             string
	probes          int
	seed            uint64
	full            bool
	days            int
	quiet           bool
	figDir          string
	tracePath       string
	progressEvery   time.Duration
	workers         int // <= 0 means GOMAXPROCS
	cluster         int // in-process cluster agents; 0 disables cluster mode
	clusterShards   int // cluster partition width; <= 0 means cluster.DefaultShards
	resume          bool
	checkpointEvery int    // rounds; 0 disables checkpointing
	format          string // dataset storage format; empty means binary
	snapshot        string // analysis snapshot mode: auto, on, off
	tix             string // temporal index mode: auto, on, off
	cpuProfile      string
	memProfile      string
	statusAddr      string // live status HTTP listener; empty disables
	remote          string // base URL of a live atlasd analysis API; fetch figures instead of scanning
	logFormat       string // structured log encoding: text or json
	logLevel        string // minimum log level: debug, info, warn, error

	// Test hooks (unexported, zero in production).
	logDst      io.Writer                       // structured log destination; nil means stderr
	statusReady func(addr string)               // called with the bound status address
	onRound     func(round int, samples uint64) // observes each merged campaign round
}

// snapshotEnabled resolves the -snapshot mode against the store's
// format: auto enables snapshots for binary stores, whose block
// boundaries make resumed scans strict delta decodes.
func (o options) snapshotEnabled(format results.Format) (bool, error) {
	switch o.snapshot {
	case "auto", "":
		return format == results.FormatBinary, nil
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("invalid -snapshot %q (want auto, on, or off)", o.snapshot)
}

// tixEnabled resolves the -tix mode against the store's format: auto
// builds the temporal aggregate index for binary stores, whose sealed
// block ranges are what the segment tree indexes.
func (o options) tixEnabled(format results.Format) (bool, error) {
	switch o.tix {
	case "auto", "":
		return format == results.FormatBinary, nil
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("invalid -tix %q (want auto, on, or off)", o.tix)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("shears: ")
	var o options
	flag.StringVar(&o.out, "out", "dataset", "output directory for the campaign dataset")
	flag.IntVar(&o.probes, "probes", 3300, "probe census size")
	flag.Uint64Var(&o.seed, "seed", 1, "world and campaign seed")
	flag.BoolVar(&o.full, "full", false, "run the paper-scale nine-month campaign")
	flag.IntVar(&o.days, "days", 0, "override campaign length in days (0 = config default)")
	flag.BoolVar(&o.quiet, "quiet", false, "skip figure output; only build the dataset")
	flag.StringVar(&o.figDir, "figdir", "", "also write figure artifacts (CSV + SVG) into this directory")
	flag.StringVar(&o.tracePath, "trace", "", "write the run's span tree as JSON to this file")
	flag.DurationVar(&o.progressEvery, "progress", 5*time.Second, "campaign progress reporting interval (0 disables)")
	flag.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0), "campaign worker count (output is identical for any value)")
	flag.IntVar(&o.cluster, "cluster", 0, "run the campaign through the distributed control plane with this many in-process agents (0 disables)")
	flag.IntVar(&o.clusterShards, "cluster-shards", 0, "cluster partition width (0 = default; output is identical for any value)")
	flag.BoolVar(&o.resume, "resume", false, "resume an interrupted campaign from <out>/checkpoint.json")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", engine.DefaultCheckpointEvery, "rounds between checkpoints (0 disables checkpointing)")
	flag.StringVar(&o.format, "format", "binary", "dataset storage format: binary (columnar samples.bin) or jsonl")
	flag.StringVar(&o.snapshot, "snapshot", "auto", "analysis snapshot mode: auto (on for binary stores), on, off")
	flag.StringVar(&o.tix, "tix", "auto", "temporal aggregate index mode: auto (on for binary stores), on, off")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write an end-of-run heap profile to this file")
	flag.StringVar(&o.statusAddr, "status-addr", "", "serve live run status (/metrics, /debug/events, /api/v1/progress) on this address")
	flag.StringVar(&o.remote, "remote", "", "fetch figures 4-7 from a running atlasd -serve-data API at this base URL instead of running a campaign")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log encoding: text (logfmt) or json")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.Parse()
	if o.remote != "" {
		if err := runRemote(o.remote, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

// checkpointFile is the engine checkpoint's name inside the dataset dir.
const checkpointFile = "checkpoint.json"

// manifestFile is the run manifest's name inside the dataset dir.
const manifestFile = "run.json"

// flightRecorderSize is how many recent log events /debug/events retains.
const flightRecorderSize = 512

func run(o options) (err error) {
	start := time.Now()
	// Reject a bad -snapshot mode before any campaign work; the store's
	// format (which resolves "auto") is only known once it is open.
	if _, err := (options{snapshot: o.snapshot}).snapshotEnabled(results.FormatBinary); err != nil {
		return err
	}
	if _, err := (options{tix: o.tix}).tixEnabled(results.FormatBinary); err != nil {
		return err
	}
	level, err := obs.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	logFormat, err := obs.ParseLogFormat(o.logFormat)
	if err != nil {
		return err
	}
	logDst := o.logDst
	if logDst == nil {
		logDst = os.Stderr
	}
	rec := obs.NewRecorder(flightRecorderSize)
	logger := obs.NewLogger(logDst,
		obs.WithLogFormat(logFormat), obs.WithLogLevel(level), obs.WithRecorder(rec),
	).With("shears")
	if o.cpuProfile != "" {
		stop, perr := obs.StartCPUProfile(o.cpuProfile)
		if perr != nil {
			return perr
		}
		defer func() {
			if serr := stop(); serr != nil && err == nil {
				err = serr
			}
		}()
	}
	if o.memProfile != "" {
		defer func() {
			if perr := obs.WriteHeapProfile(o.memProfile); perr != nil && err == nil {
				err = perr
			}
		}()
	}
	reg := obs.NewRegistry()
	m := atlas.NewMetrics(reg)
	engMetrics := engine.NewMetrics(reg)
	snapMetrics := snap.NewMetrics(reg)
	scanMetrics := scan.NewMetrics(reg)
	manifest := obs.NewRunManifest("shears", start)
	manifest.Flags = obs.FlagsFromSet(flag.CommandLine)
	root := obs.NewTrace("shears.run")
	root.SetAttr("seed", o.seed)
	root.SetAttr("probes", o.probes)
	defer func() {
		root.End()
		dump := root.Dump()
		if o.tracePath != "" {
			if werr := writeTrace(o.tracePath, root, logger); werr != nil && err == nil {
				err = werr
			}
		}
		for _, line := range obs.FormatStageTable(obs.StageTotals(dump), time.Since(start)) {
			fmt.Fprintln(logDst, line)
		}
		// The manifest lands next to the dataset; skip it when the run died
		// before the output directory existed.
		if _, serr := os.Stat(o.out); serr == nil {
			manifest.Finish(time.Now())
			manifest.SetStagesFromDump(dump)
			manifest.PeakQueueDepth = engMetrics.QueueDepthPeak.Value()
			if werr := manifest.Write(filepath.Join(o.out, manifestFile)); werr != nil && err == nil {
				err = werr
			}
		}
	}()

	buildSpan := root.Child("world.build")
	w, buildErr := world.Build(world.Config{Seed: o.seed, Probes: o.probes})
	buildSpan.End()
	if buildErr != nil {
		return buildErr
	}
	w.Platform.Metrics = m
	cfg := atlas.TestCampaign()
	if o.full {
		cfg = atlas.PaperCampaign()
	}
	if o.days > 0 {
		cfg.End = cfg.Start.Add(time.Duration(o.days) * 24 * time.Hour)
	}
	workers := o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	manifest.Workers = workers
	logger.Info("world built",
		"probes", w.Probes.Len(), "countries", len(w.Probes.Countries()),
		"regions", w.Catalog.Len(),
		"campaign_start", cfg.Start.Format("2006-01-02"),
		"campaign_end", cfg.End.Format("2006-01-02"), "workers", workers)

	// Live status: /metrics, /debug/events and /api/v1/progress serve the
	// run's state while it executes. The mux is kept so cluster mode can
	// mount the coordinator's endpoints on the same listener.
	var statusMux *http.ServeMux
	if o.statusAddr != "" {
		ln, lerr := net.Listen("tcp", o.statusAddr)
		if lerr != nil {
			return lerr
		}
		statusMux = obs.NewStatusMux(reg, rec, progressSnapshot(manifest, start, m, engMetrics, snapMetrics, scanMetrics, cfg.Rounds()))
		srv := &http.Server{Handler: statusMux}
		go srv.Serve(ln)
		defer srv.Close()
		logger.Info("status server listening", "addr", ln.Addr().String())
		if o.statusReady != nil {
			o.statusReady(ln.Addr().String())
		}
	}

	// Open the sink: a fresh dataset, or — on resume — the existing one
	// truncated back to the checkpoint's durable offset.
	fingerprint := cfg.Fingerprint(o.seed, w.Probes.Len())
	ckPath := filepath.Join(o.out, checkpointFile)
	var (
		store        *results.Store
		sink         *results.Sink
		startRound   int
		startSamples uint64
	)
	if o.resume {
		cp, err := engine.LoadCheckpoint(ckPath)
		if err != nil {
			return err
		}
		if cp.Fingerprint != fingerprint {
			return fmt.Errorf("checkpoint %s belongs to a different campaign (fingerprint %s, want %s); "+
				"rerun with the original -seed/-probes/-full/-days or start fresh", ckPath, cp.Fingerprint, fingerprint)
		}
		store, err = results.Open(o.out)
		if err != nil {
			return err
		}
		sink, err = store.Resume(cp.SinkOffset)
		if err != nil {
			return err
		}
		startRound, startSamples = cp.Round+1, cp.Samples
		logger.Info("resuming campaign",
			"rounds_done", startRound, "rounds_total", cfg.Rounds(),
			"samples", startSamples, "format", store.Format().String(), "sink_offset", cp.SinkOffset)
	} else {
		format, err := results.ParseFormat(o.format)
		if err != nil {
			return err
		}
		meta := cfg.Meta(o.seed, w.Probes.Len(), w.Catalog.Len())
		store, sink, err = results.Create(o.out, meta, format)
		if err != nil {
			return err
		}
	}
	sink.Instrument(results.NewMetrics(reg))

	snapEnabled, err := o.snapshotEnabled(store.Format())
	if err != nil {
		return err
	}
	snapOpts := core.SnapshotOptions{
		Path:          store.SnapshotPath(),
		Metrics:       snapMetrics,
		RefreshFactor: core.DefaultRefreshFactor,
		Log:           logger.With("snap"),
	}

	manifest.WorldFingerprint = fingerprint
	campaignOpts := atlas.CampaignOptions{
		Workers:       workers,
		Fingerprint:   fingerprint,
		StartRound:    startRound,
		StartSamples:  startSamples,
		EngineMetrics: engMetrics,
		Log:           logger.With("engine"),
		OnRound:       o.onRound,
	}
	if o.checkpointEvery > 0 {
		campaignOpts.CheckpointPath = ckPath
		campaignOpts.CheckpointEvery = o.checkpointEvery
		// Commit flushes and fsyncs the samples file, so the checkpoint's
		// offset is always durable on disk — and, for binary stores, a
		// block boundary Resume can truncate to.
		campaignOpts.Commit = sink.Commit
		if snapEnabled {
			// Fold each durable checkpoint into the analysis snapshot while
			// the sink is quiesced: the post-campaign scan (and any later
			// re-analysis) then decodes only blocks written since the last
			// checkpoint. Snapshot failures never fail the campaign — the
			// scan falls back to a cold pass.
			campaignOpts.OnCheckpoint = func(round int, offset int64) {
				if _, uerr := core.UpdateSnapshot(context.Background(), store, w.Index, cfg.Start, 7*24*time.Hour, workers, nil, snapOpts); uerr != nil {
					logger.Warn("snapshot update failed", "round", round, "offset", offset, "error", uerr)
				}
			}
		}
	}

	campSpan := root.Child("campaign")
	ctx := obs.ContextWith(context.Background(), campSpan)
	stopProgress := startProgress(logger, m, cfg.Rounds(), o.progressEvery)
	var n uint64
	if o.cluster > 0 {
		shards := o.clusterShards
		if shards <= 0 {
			shards = cluster.DefaultShards
		}
		if p := w.Platform.PublicProbes(); shards > p {
			shards = p
		}
		m.CampaignRoundsTotal.Set(float64(cfg.Rounds()))
		m.CampaignRoundsDone.Set(float64(startRound))
		plan := cluster.Plan{
			Fingerprint: fingerprint,
			Seed:        o.seed,
			Probes:      o.probes,
			Shards:      shards,
			Rounds:      cfg.Rounds(),
			Campaign:    cfg,
		}
		n, err = clusterCampaign(ctx, o, w.Platform, plan, campaignOpts, sink, reg, m, statusMux, manifest, logger.With("cluster"))
	} else {
		n, err = w.Platform.RunCampaignOpts(ctx, cfg, campaignOpts, sink.Write)
	}
	stopProgress()
	campSpan.End()
	manifest.Samples = n
	if d := campSpan.Duration(); d > 0 {
		manifest.SamplesPerSec = float64(n-startSamples) / d.Seconds()
	}
	if err != nil {
		sink.Close()
		if o.checkpointEvery > 0 {
			logger.Warn("campaign interrupted; rerun with -resume to continue",
				"samples", n, "checkpoint", ckPath, "error", err)
		}
		return err
	}
	flushSpan := root.Child("results.flush")
	err = sink.Close()
	flushSpan.End()
	if err != nil {
		return err
	}
	// The run completed: the checkpoint has nothing left to resume.
	if err := os.Remove(ckPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	logger.Info("campaign complete",
		"samples", n, "out", o.out, "elapsed", time.Since(start).Round(time.Millisecond))

	tixEnabled, err := o.tixEnabled(store.Format())
	if err != nil {
		return err
	}
	if tixEnabled {
		// The temporal index is an accelerator: a build failure costs
		// windowed queries their fast path, never the campaign.
		if err := buildTix(store, w.Index, logger.With("tix")); err != nil {
			logger.Warn("temporal index build failed", "error", err)
		}
	}

	figSpan := root.Child("figures")
	defer figSpan.End()
	if o.quiet && o.figDir == "" {
		return nil
	}
	// One fused parallel scan of the dataset computes every figure report;
	// the renderers below only format what it already aggregated.
	scanCtx := obs.ContextWith(context.Background(), figSpan)
	var (
		rep *core.SuiteReport
		st  scan.Stats
	)
	if snapEnabled {
		rep, st, err = core.ScanStoreSnap(scanCtx, store, w.Index, cfg.Start, 7*24*time.Hour, workers, scanMetrics, snapOpts)
	} else {
		rep, st, err = core.ScanStore(scanCtx, store, w.Index, cfg.Start, 7*24*time.Hour, workers, scanMetrics)
	}
	if err != nil {
		return err
	}
	logger.Info("scan complete",
		"samples", st.Samples, "duration", st.Duration.Round(time.Millisecond),
		"mb_per_sec", st.MBPerSec(), "workers", st.Workers)
	if snapEnabled && st.Binary {
		logger.Info("snapshot coverage",
			"blocks_read", st.BlocksRead, "blocks_total", st.BlocksTotal,
			"prefix_blocks", st.PrefixBlocks)
		manifest.Snapshot = &obs.SnapshotCoverage{
			PrefixBlocks: st.PrefixBlocks, BlocksRead: st.BlocksRead, BlocksTotal: st.BlocksTotal,
		}
	}
	if o.figDir != "" {
		if err := writeArtifacts(o.figDir, rep, cfg, figSpan); err != nil {
			return err
		}
		logger.Info("figure artifacts written", "dir", o.figDir)
	}
	if o.quiet {
		return nil
	}
	return printFigures(rep, w, figSpan)
}

// buildTix builds (or incrementally extends) the dataset's temporal
// aggregate index so that windowed queries — dataset -op window, or an
// atlasd serving this directory — compose pre-merged segment nodes
// instead of rescanning the campaign. The schedule is deterministic, so
// rebuilding after an interrupted run appends exactly the nodes the
// earlier run would have.
func buildTix(store *results.Store, idx *core.Index, logger *obs.Logger) error {
	r, closer, err := colf.Open(store.SamplesPath())
	if err != nil {
		return err
	}
	blocks := append([]colf.BlockInfo(nil), r.Blocks()...)
	closer.Close()
	sf, err := os.Open(store.SamplesPath())
	if err != nil {
		return err
	}
	defer sf.Close()
	ix, err := tix.Open(store.TixPath(), tix.Binding{
		PassSet: tix.PassSetCDF,
		Index:   idx.Fingerprint(),
		Meta:    core.MetaFingerprint(store.Meta()),
	}, blocks, logger)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := ix.Extend(sf, blocks, idx); err != nil {
		ix.Close()
		return err
	}
	logger.Info("temporal index ready",
		"path", ix.Path(), "nodes", ix.Nodes(), "blocks", len(blocks),
		"elapsed", time.Since(start).Round(time.Millisecond))
	return ix.Close()
}

// clusterCampaign runs the campaign through the distributed control
// plane: a loopback coordinator owns the sink and the round-major
// merge, and o.cluster in-process worker agents register, lease shards,
// and ship cells back over HTTP. The merged dataset is byte-identical
// to the in-process engine path at any agent count. The coordinator
// reuses the engine-path campaign options verbatim (sink commit,
// checkpoint path and cadence, resume watermark, snapshot hook), so
// checkpoint files from either mode resume in the other.
func clusterCampaign(ctx context.Context, o options, p *atlas.Platform, plan cluster.Plan, opts atlas.CampaignOptions, sink *results.Sink, reg *obs.Registry, am *atlas.Metrics, statusMux *http.ServeMux, manifest *obs.RunManifest, logger *obs.Logger) (uint64, error) {
	// Synthesis happens inside the agents, so the driver's campaign
	// tallies never see a sample; attribute them at merge time instead,
	// keeping the progress reporter and /api/v1/progress meaningful in
	// cluster mode. The merge is single-threaded, so per-sample counter
	// adds cost nothing worth batching.
	continent := make(map[int]geo.Continent)
	for _, pr := range p.Population.Public() {
		continent[pr.ID] = pr.Continent
	}
	write := sink.Write
	if am != nil {
		write = func(s results.Sample) error {
			if err := sink.Write(s); err != nil {
				return err
			}
			am.CampaignSamples.With(continent[s.ProbeID].Code()).Add(1)
			if s.Lost {
				am.CampaignLost.Add(1)
			}
			return nil
		}
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Plan:            plan,
		Sink:            write,
		Commit:          opts.Commit,
		CheckpointPath:  opts.CheckpointPath,
		CheckpointEvery: opts.CheckpointEvery,
		StartRound:      opts.StartRound,
		StartSamples:    opts.StartSamples,
		OnCheckpoint:    opts.OnCheckpoint,
		Metrics:         cluster.NewMetrics(reg),
		Log:             logger,
		OnRound: func(round int, samples uint64) {
			if am != nil {
				am.CampaignRoundsDone.Set(float64(round + 1))
			}
			if opts.OnRound != nil {
				opts.OnRound(round, samples)
			}
		},
	})
	if err != nil {
		return 0, err
	}
	if statusMux != nil {
		coord.Mount(statusMux)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	logger.Info("coordinator listening",
		"addr", base, "agents", o.cluster, "shards", plan.Shards, "rounds", plan.Rounds)

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	agentErrs := make(chan error, o.cluster)
	for i := 0; i < o.cluster; i++ {
		id := fmt.Sprintf("local-%d", i)
		go func() {
			ag, aerr := cluster.NewAgent(cluster.AgentConfig{ID: id, BaseURL: base, Log: logger})
			if aerr != nil {
				agentErrs <- aerr
				return
			}
			agentErrs <- ag.Run(actx)
		}()
	}
	waitc := make(chan error, 1)
	go func() { waitc <- coord.Wait(actx) }()
	running := o.cluster
	var runErr, agentErr error
loop:
	for {
		select {
		case runErr = <-waitc:
			break loop
		case aerr := <-agentErrs:
			running--
			if aerr != nil && agentErr == nil && actx.Err() == nil {
				agentErr = aerr
			}
			if running == 0 && !coord.Done() {
				runErr = fmt.Errorf("all cluster agents exited before the campaign finished: %w", agentErr)
				break loop
			}
		}
	}
	cancel()
	for ; running > 0; running-- {
		<-agentErrs
	}
	manifest.Cluster = &obs.ClusterTopology{
		Agents:         o.cluster,
		Shards:         plan.Shards,
		ShardsPerAgent: float64(plan.Shards) / float64(o.cluster),
		Reassignments:  coord.Reassignments(),
	}
	return coord.Samples(), runErr
}

// writeTrace dumps the span tree twice: legacy span JSON at path and
// Chrome trace-event JSON (Perfetto/chrome://tracing loadable) at the
// derived <path>.chrome.json. Write and close failures are surfaced —
// a truncated trace must fail the run, not pass silently.
func writeTrace(path string, root *obs.Span, logger *obs.Logger) error {
	write := func(p string, emit func(io.Writer) error) error {
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace %s: %w", p, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing trace %s: %w", p, err)
		}
		return nil
	}
	if err := write(path, root.WriteJSON); err != nil {
		return err
	}
	chromePath := chromeTracePath(path)
	if err := write(chromePath, root.WriteChromeTrace); err != nil {
		return err
	}
	logger.Info("trace written", "path", path, "chrome_path", chromePath)
	return nil
}

// chromeTracePath derives the Chrome trace's file name: x.json becomes
// x.chrome.json (extension-less paths get .chrome appended).
func chromeTracePath(path string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + ".chrome" + ext
}

// progressSnapshot builds the /api/v1/progress payload function: a
// per-request snapshot of the campaign watermarks, engine queue depths,
// snapshot cache counters, and scan throughput.
func progressSnapshot(manifest *obs.RunManifest, start time.Time, m *atlas.Metrics, em *engine.Metrics, sm *snap.Metrics, scm *scan.Metrics, totalRounds int) func() any {
	type campaignProgress struct {
		RoundsDone  float64 `json:"rounds_done"`
		RoundsTotal float64 `json:"rounds_total"`
		Samples     uint64  `json:"samples"`
		SamplesLost uint64  `json:"samples_lost"`
		ETASeconds  float64 `json:"eta_seconds"`
	}
	type engineProgress struct {
		QueueDepth     float64            `json:"queue_depth"`
		QueueDepthPeak float64            `json:"queue_depth_peak"`
		ShardRounds    map[string]float64 `json:"shard_rounds,omitempty"`
	}
	type snapshotProgress struct {
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		Invalidations uint64 `json:"invalidations"`
		Writes        uint64 `json:"writes"`
	}
	type scanProgress struct {
		Scans         uint64  `json:"scans"`
		Samples       uint64  `json:"samples"`
		SamplesPerSec float64 `json:"samples_per_sec"`
	}
	type progress struct {
		RunID         string           `json:"run_id"`
		UptimeSeconds float64          `json:"uptime_seconds"`
		Campaign      campaignProgress `json:"campaign"`
		Engine        engineProgress   `json:"engine"`
		Snapshot      snapshotProgress `json:"snapshot"`
		Scan          scanProgress     `json:"scan"`
	}
	return func() any {
		p := progress{
			RunID:         manifest.RunID,
			UptimeSeconds: time.Since(start).Seconds(),
			Campaign: campaignProgress{
				RoundsDone:  m.CampaignRoundsDone.Value(),
				RoundsTotal: m.CampaignRoundsTotal.Value(),
				Samples:     m.CampaignSamples.Sum(),
				SamplesLost: m.CampaignLost.Value(),
			},
			Engine: engineProgress{
				QueueDepth:     em.QueueDepth.Value(),
				QueueDepthPeak: em.QueueDepthPeak.Value(),
			},
			Snapshot: snapshotProgress{
				Hits:          sm.Hits.Value(),
				Misses:        sm.Misses.Value(),
				Invalidations: sm.Invalidations.Value(),
				Writes:        sm.Writes.Value(),
			},
			Scan: scanProgress{
				Scans:         scm.Scans.Value(),
				Samples:       scm.Samples.Value(),
				SamplesPerSec: scm.SamplesPerSec.Value(),
			},
		}
		if done := p.Campaign.RoundsDone; done > 0 && totalRounds > 0 && done < float64(totalRounds) {
			perRound := time.Since(start).Seconds() / done
			p.Campaign.ETASeconds = perRound * (float64(totalRounds) - done)
		}
		em.ShardRounds.Walk(func(labels []string, v float64) {
			if p.Engine.ShardRounds == nil {
				p.Engine.ShardRounds = make(map[string]float64)
			}
			p.Engine.ShardRounds[labels[0]] = v
		})
		return p
	}
}

// startProgress launches the periodic campaign progress reporter. The
// returned stop function halts it and waits for the goroutine to exit.
func startProgress(logger *obs.Logger, m *atlas.Metrics, totalRounds int, every time.Duration) (stop func()) {
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		started := time.Now()
		var lastSamples uint64
		lastAt := started
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				samples := m.CampaignSamples.Sum()
				rate := float64(samples-lastSamples) / now.Sub(lastAt).Seconds()
				lastSamples, lastAt = samples, now
				roundsDone := m.CampaignRoundsDone.Value()
				eta := "?"
				if roundsDone > 0 && totalRounds > 0 {
					perRound := time.Since(started).Seconds() / roundsDone
					eta = time.Duration(perRound * (float64(totalRounds) - roundsDone) * float64(time.Second)).Round(time.Second).String()
				}
				logger.Info("progress",
					"round", roundsDone, "rounds_total", totalRounds,
					"pct", fmt.Sprintf("%.1f", 100*roundsDone/float64(totalRounds)),
					"samples", samples, "samples_per_sec", fmt.Sprintf("%.0f", rate),
					"eta", eta, "continents", strings.TrimPrefix(continentTally(m), ", "))
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// continentTally formats the per-continent sample counts, largest first.
func continentTally(m *atlas.Metrics) string {
	type tally struct {
		code string
		n    uint64
	}
	var ts []tally
	m.CampaignSamples.Walk(func(labels []string, v uint64) {
		ts = append(ts, tally{labels[0], v})
	})
	if len(ts) == 0 {
		return ""
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].n > ts[j].n })
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("%s=%d", t.code, t.n)
	}
	return ", " + strings.Join(parts, " ")
}

// writeArtifacts exports the dataset figures as CSV and SVG files from the
// fused scan's reports, one child span per artifact.
func writeArtifacts(dir string, rep *core.SuiteReport, cfg atlas.CampaignConfig, span *obs.Span) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		s := span.Child("artifact:" + name)
		defer s.End()
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	series, _, err := figures.Figure1(context.Background(), 1)
	if err != nil {
		return err
	}
	if err := write("figure1.csv", func(f io.Writer) error { return figures.Figure1CSV(f, series) }); err != nil {
		return err
	}
	if err := write("figure1.svg", func(f io.Writer) error { return figures.Figure1SVG(f, series) }); err != nil {
		return err
	}
	if err := write("figure4.csv", func(f io.Writer) error { return figures.Figure4CSV(f, rep.Proximity) }); err != nil {
		return err
	}
	if err := write("figure5.csv", func(f io.Writer) error { return figures.CDFCSV(f, rep.MinRTT) }); err != nil {
		return err
	}
	if err := write("figure5.svg", func(f io.Writer) error { return figures.CDFSVG(f, rep.MinRTT, "Figure 5: min RTT CDF by continent") }); err != nil {
		return err
	}
	if err := write("figure6.csv", func(f io.Writer) error { return figures.CDFCSV(f, rep.FullDist) }); err != nil {
		return err
	}
	if err := write("figure6.svg", func(f io.Writer) error { return figures.CDFSVG(f, rep.FullDist, "Figure 6: all pings to closest DC") }); err != nil {
		return err
	}
	if err := write("figure7.csv", func(f io.Writer) error { return figures.Figure7CSV(f, rep.LastMile) }); err != nil {
		return err
	}
	if err := write("figure7.svg", func(f io.Writer) error { return figures.Figure7SVG(f, rep.LastMile, cfg.Start) }); err != nil {
		return err
	}
	rep8, _, err := figures.Figure8(rep.LastMile, apps.Paper())
	if err != nil {
		return err
	}
	return write("figure8.csv", func(f io.Writer) error { return figures.Figure8CSV(f, rep8) })
}

func printFigures(rep *core.SuiteReport, w *world.World, span *obs.Span) error {
	ctx := context.Background()
	emit := func(name string, lines []string) {
		fmt.Printf("\n=== Figure %s ===\n", name)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	// figure runs fn under a child span and prints its lines.
	figure := func(name string, fn func() ([]string, error)) error {
		s := span.Child("figure:" + name)
		defer s.End()
		lines, err := fn()
		if err != nil {
			return err
		}
		emit(name, lines)
		return nil
	}

	if err := figure("1 (zeitgeist)", func() ([]string, error) {
		_, l, err := figures.Figure1(ctx, 1)
		return l, err
	}); err != nil {
		return err
	}
	if err := figure("2 (application requirements)", func() ([]string, error) {
		return figures.Figure2(apps.Paper())
	}); err != nil {
		return err
	}
	if err := figure("3a (cloud regions)", func() ([]string, error) {
		return figures.Figure3a(w.Catalog)
	}); err != nil {
		return err
	}
	if err := figure("3b (probes)", func() ([]string, error) {
		return figures.Figure3b(w.Probes)
	}); err != nil {
		return err
	}
	if err := figure("4 (proximity to the cloud)", func() ([]string, error) {
		return figures.Figure4Lines(rep.Proximity), nil
	}); err != nil {
		return err
	}
	if err := figure("5 (min RTT CDF by continent)", func() ([]string, error) {
		return figures.CDFLines(rep.MinRTT)
	}); err != nil {
		return err
	}
	if err := figure("6 (all pings to closest DC)", func() ([]string, error) {
		return figures.CDFLines(rep.FullDist)
	}); err != nil {
		return err
	}
	if err := figure("7 (wired vs wireless)", func() ([]string, error) {
		return figures.Figure7Lines(rep.LastMile)
	}); err != nil {
		return err
	}
	if err := figure("8 (feasibility zone)", func() ([]string, error) {
		_, l, err := figures.Figure8(rep.LastMile, apps.Paper())
		return l, err
	}); err != nil {
		return err
	}

	// §4.3 and §5 companion tables.
	if err := figure("§4.3 (where is the delay?)", func() ([]string, error) {
		rep, err := delay.WhereIsTheDelay(w.Platform, delay.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return rep.Format(), nil
	}); err != nil {
		return err
	}
	if err := figure("§4.1 (per-provider reachability)", func() ([]string, error) {
		var lines []string
		for _, row := range rep.Provider.Rows {
			lines = append(lines, fmt.Sprintf("%-16s median=%6.1fms p95=%7.1fms loss=%.2f%% (n=%d)",
				row.Provider, row.Summary.Median, row.Summary.P95, 100*row.LossRate, row.Summary.N))
		}
		return lines, nil
	}); err != nil {
		return err
	}
	return figure("§5 (backhaul demand per application)", func() ([]string, error) {
		rep, err := bandwidth.Justify(apps.Paper(), bandwidth.Metro(), 0.95)
		if err != nil {
			return nil, err
		}
		return rep.Format(), nil
	})
}
