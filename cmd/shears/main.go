// Command shears is the end-to-end reproduction driver: it builds the
// world (probes, cloud regions, latency model), runs the measurement
// campaign, writes the dataset to disk, and regenerates every figure of
// the paper from it.
//
// Usage:
//
//	shears -out ./dataset            # test-scale campaign (default)
//	shears -out ./dataset -full      # paper-scale: 9 months, ~3.2M samples
//	shears -out ./dataset -days 60   # custom window
//
// Observability: the driver prints periodic progress lines (samples/sec,
// ETA, per-continent tallies) every -progress interval while the campaign
// runs, and -trace out.json dumps the span tree of the whole run
// (world build -> campaign rounds -> result write -> figure generation).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shears: ")
	var (
		out      = flag.String("out", "dataset", "output directory for the campaign dataset")
		probes   = flag.Int("probes", 3300, "probe census size")
		seed     = flag.Uint64("seed", 1, "world and campaign seed")
		full     = flag.Bool("full", false, "run the paper-scale nine-month campaign")
		days     = flag.Int("days", 0, "override campaign length in days (0 = config default)")
		quiet    = flag.Bool("quiet", false, "skip figure output; only build the dataset")
		figDir   = flag.String("figdir", "", "also write figure artifacts (CSV + SVG) into this directory")
		trace    = flag.String("trace", "", "write the run's span tree as JSON to this file")
		progress = flag.Duration("progress", 5*time.Second, "campaign progress reporting interval (0 disables)")
	)
	flag.Parse()
	if err := run(*out, *probes, *seed, *full, *days, *quiet, *figDir, *trace, *progress); err != nil {
		log.Fatal(err)
	}
}

func run(out string, probes int, seed uint64, full bool, days int, quiet bool, figDir, tracePath string, progressEvery time.Duration) (err error) {
	start := time.Now()
	reg := obs.NewRegistry()
	m := atlas.NewMetrics(reg)
	root := obs.NewTrace("shears.run")
	root.SetAttr("seed", seed)
	root.SetAttr("probes", probes)
	defer func() {
		root.End()
		if tracePath != "" {
			if werr := writeTrace(tracePath, root); werr != nil && err == nil {
				err = werr
			}
		}
	}()

	buildSpan := root.Child("world.build")
	w, buildErr := world.Build(world.Config{Seed: seed, Probes: probes})
	buildSpan.End()
	if buildErr != nil {
		return buildErr
	}
	w.Platform.Metrics = m
	cfg := atlas.TestCampaign()
	if full {
		cfg = atlas.PaperCampaign()
	}
	if days > 0 {
		cfg.End = cfg.Start.Add(time.Duration(days) * 24 * time.Hour)
	}
	log.Printf("world: %d probes in %d countries, %d regions, campaign %s..%s",
		w.Probes.Len(), len(w.Probes.Countries()), w.Catalog.Len(),
		cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"))

	meta := cfg.Meta(seed, w.Probes.Len(), w.Catalog.Len())
	store, writer, closeFn, err := results.Create(out, meta)
	if err != nil {
		return err
	}
	writer.Instrument(results.NewMetrics(reg))

	campSpan := root.Child("campaign")
	ctx := obs.ContextWith(context.Background(), campSpan)
	stopProgress := startProgress(m, cfg.Rounds(), progressEvery)
	n, err := w.Platform.RunCampaign(ctx, cfg, writer.Write)
	stopProgress()
	campSpan.End()
	if err != nil {
		closeFn()
		return err
	}
	flushSpan := root.Child("results.flush")
	err = closeFn()
	flushSpan.End()
	if err != nil {
		return err
	}
	log.Printf("campaign: %d samples written to %s in %v", n, out, time.Since(start).Round(time.Millisecond))

	figSpan := root.Child("figures")
	defer figSpan.End()
	if figDir != "" {
		if err := writeArtifacts(figDir, store, w, cfg, figSpan); err != nil {
			return err
		}
		log.Printf("figure artifacts written to %s", figDir)
	}
	if quiet {
		return nil
	}
	return printFigures(store, w, cfg, figSpan)
}

// writeTrace dumps the span tree to path.
func writeTrace(path string, root *obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := root.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("trace written to %s", path)
	return nil
}

// startProgress launches the periodic campaign progress reporter. The
// returned stop function halts it and waits for the goroutine to exit.
func startProgress(m *atlas.Metrics, totalRounds int, every time.Duration) (stop func()) {
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		started := time.Now()
		var lastSamples uint64
		lastAt := started
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				samples := m.CampaignSamples.Sum()
				rate := float64(samples-lastSamples) / now.Sub(lastAt).Seconds()
				lastSamples, lastAt = samples, now
				roundsDone := m.CampaignRoundsDone.Value()
				eta := "?"
				if roundsDone > 0 && totalRounds > 0 {
					perRound := time.Since(started).Seconds() / roundsDone
					eta = time.Duration(perRound * (float64(totalRounds) - roundsDone) * float64(time.Second)).Round(time.Second).String()
				}
				log.Printf("progress: round %.0f/%d (%.1f%%), %d samples, %.0f samples/s, ETA %s%s",
					roundsDone, totalRounds, 100*roundsDone/float64(totalRounds),
					samples, rate, eta, continentTally(m))
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// continentTally formats the per-continent sample counts, largest first.
func continentTally(m *atlas.Metrics) string {
	type tally struct {
		code string
		n    uint64
	}
	var ts []tally
	m.CampaignSamples.Walk(func(labels []string, v uint64) {
		ts = append(ts, tally{labels[0], v})
	})
	if len(ts) == 0 {
		return ""
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].n > ts[j].n })
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("%s=%d", t.code, t.n)
	}
	return ", " + strings.Join(parts, " ")
}

// writeArtifacts exports the dataset figures as CSV and SVG files, one
// child span per artifact.
func writeArtifacts(dir string, src results.Source, w *world.World, cfg atlas.CampaignConfig, span *obs.Span) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		s := span.Child("artifact:" + name)
		defer s.End()
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	series, _, err := figures.Figure1(context.Background(), 1)
	if err != nil {
		return err
	}
	if err := write("figure1.csv", func(f io.Writer) error { return figures.Figure1CSV(f, series) }); err != nil {
		return err
	}
	if err := write("figure1.svg", func(f io.Writer) error { return figures.Figure1SVG(f, series) }); err != nil {
		return err
	}
	rep4, _, err := figures.Figure4(src, w.Index)
	if err != nil {
		return err
	}
	if err := write("figure4.csv", func(f io.Writer) error { return figures.Figure4CSV(f, rep4) }); err != nil {
		return err
	}
	rep5, _, err := figures.Figure5(src, w.Index)
	if err != nil {
		return err
	}
	if err := write("figure5.csv", func(f io.Writer) error { return figures.CDFCSV(f, rep5) }); err != nil {
		return err
	}
	if err := write("figure5.svg", func(f io.Writer) error { return figures.CDFSVG(f, rep5, "Figure 5: min RTT CDF by continent") }); err != nil {
		return err
	}
	rep6, _, err := figures.Figure6(src, w.Index)
	if err != nil {
		return err
	}
	if err := write("figure6.csv", func(f io.Writer) error { return figures.CDFCSV(f, rep6) }); err != nil {
		return err
	}
	if err := write("figure6.svg", func(f io.Writer) error { return figures.CDFSVG(f, rep6, "Figure 6: all pings to closest DC") }); err != nil {
		return err
	}
	rep7, _, err := figures.Figure7(src, w.Index, cfg.Start)
	if err != nil {
		return err
	}
	if err := write("figure7.csv", func(f io.Writer) error { return figures.Figure7CSV(f, rep7) }); err != nil {
		return err
	}
	if err := write("figure7.svg", func(f io.Writer) error { return figures.Figure7SVG(f, rep7, cfg.Start) }); err != nil {
		return err
	}
	rep8, _, err := figures.Figure8(rep7, apps.Paper())
	if err != nil {
		return err
	}
	return write("figure8.csv", func(f io.Writer) error { return figures.Figure8CSV(f, rep8) })
}

func printFigures(src results.Source, w *world.World, cfg atlas.CampaignConfig, span *obs.Span) error {
	ctx := context.Background()
	emit := func(name string, lines []string) {
		fmt.Printf("\n=== Figure %s ===\n", name)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	// figure runs fn under a child span and prints its lines.
	figure := func(name string, fn func() ([]string, error)) error {
		s := span.Child("figure:" + name)
		defer s.End()
		lines, err := fn()
		if err != nil {
			return err
		}
		emit(name, lines)
		return nil
	}

	if err := figure("1 (zeitgeist)", func() ([]string, error) {
		_, l, err := figures.Figure1(ctx, 1)
		return l, err
	}); err != nil {
		return err
	}
	if err := figure("2 (application requirements)", func() ([]string, error) {
		return figures.Figure2(apps.Paper())
	}); err != nil {
		return err
	}
	if err := figure("3a (cloud regions)", func() ([]string, error) {
		return figures.Figure3a(w.Catalog)
	}); err != nil {
		return err
	}
	if err := figure("3b (probes)", func() ([]string, error) {
		return figures.Figure3b(w.Probes)
	}); err != nil {
		return err
	}
	if err := figure("4 (proximity to the cloud)", func() ([]string, error) {
		_, l, err := figures.Figure4(src, w.Index)
		return l, err
	}); err != nil {
		return err
	}
	if err := figure("5 (min RTT CDF by continent)", func() ([]string, error) {
		_, l, err := figures.Figure5(src, w.Index)
		return l, err
	}); err != nil {
		return err
	}
	if err := figure("6 (all pings to closest DC)", func() ([]string, error) {
		_, l, err := figures.Figure6(src, w.Index)
		return l, err
	}); err != nil {
		return err
	}

	// Figure 7's report feeds Figure 8, so it is computed once outside
	// the closure and both spans still cover their own work.
	f7span := span.Child("figure:7 (wired vs wireless)")
	rep7, l7, err := figures.Figure7(src, w.Index, cfg.Start)
	f7span.End()
	if err != nil {
		return err
	}
	emit("7 (wired vs wireless)", l7)

	if err := figure("8 (feasibility zone)", func() ([]string, error) {
		_, l, err := figures.Figure8(rep7, apps.Paper())
		return l, err
	}); err != nil {
		return err
	}

	// §4.3 and §5 companion tables.
	if err := figure("§4.3 (where is the delay?)", func() ([]string, error) {
		rep, err := delay.WhereIsTheDelay(w.Platform, delay.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return rep.Format(), nil
	}); err != nil {
		return err
	}
	if err := figure("§4.1 (per-provider reachability)", func() ([]string, error) {
		rep, err := core.ProviderComparison(src, w.Index)
		if err != nil {
			return nil, err
		}
		var lines []string
		for _, row := range rep.Rows {
			lines = append(lines, fmt.Sprintf("%-16s median=%6.1fms p95=%7.1fms loss=%.2f%% (n=%d)",
				row.Provider, row.Summary.Median, row.Summary.P95, 100*row.LossRate, row.Summary.N))
		}
		return lines, nil
	}); err != nil {
		return err
	}
	return figure("§5 (backhaul demand per application)", func() ([]string, error) {
		rep, err := bandwidth.Justify(apps.Paper(), bandwidth.Metro(), 0.95)
		if err != nil {
			return nil, err
		}
		return rep.Format(), nil
	})
}
