package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// remoteFigures lists the figures a running atlasd -serve-data instance
// pre-renders, with the captions the local printer uses.
var remoteFigures = []struct{ fig, title string }{
	{"4", "proximity to the cloud"},
	{"5", "min RTT CDF by continent"},
	{"6", "all pings to closest DC"},
	{"7", "wired vs wireless"},
}

// runRemote prints figures 4–7 fetched from a live atlasd analysis API
// instead of scanning a local dataset. The serving engine answers from
// its resident snapshot, so this needs no dataset on this machine and
// works while the remote campaign is still appending. All four figures
// carry the serving snapshot's ETag; if it advances between fetches the
// mismatch is reported so the caller knows the set is not one
// consistent cut.
func runRemote(base string, out io.Writer) error {
	client := &http.Client{Timeout: 30 * time.Second}
	base = strings.TrimRight(base, "/")
	etags := make(map[string]bool)
	for _, f := range remoteFigures {
		body, etag, err := fetchFigure(client, base, f.fig)
		if err != nil {
			return err
		}
		if etag != "" {
			etags[etag] = true
		}
		fmt.Fprintf(out, "\n=== Figure %s (%s) ===\n", f.fig, f.title)
		if _, err := out.Write(body); err != nil {
			return err
		}
	}
	if len(etags) > 1 {
		fmt.Fprintf(out, "\nwarning: serving snapshot advanced mid-fetch (%d distinct ETags); figures span more than one dataset cut\n", len(etags))
	}
	return nil
}

// fetchFigure gets one pre-rendered figure, surfacing the server's
// stable {"error": ...} payload on failure.
func fetchFigure(c *http.Client, base, fig string) (body []byte, etag string, err error) {
	url := base + "/api/v1/figures/" + fig
	resp, err := c.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, "", fmt.Errorf("reading %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, "", fmt.Errorf("%s: %s (status %d)", url, e.Error, resp.StatusCode)
		}
		return nil, "", fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return body, resp.Header.Get("Etag"), nil
}
