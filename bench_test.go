// Package repro's benchmark harness regenerates every figure of the paper
// (one benchmark per figure), plus throughput benchmarks for the pipeline
// stages: campaign generation, latency-model sampling, and live pings.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/atlas"
	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/expansion"
	"repro/internal/figures"
	"repro/internal/netem"
	"repro/internal/netsim"
	"repro/internal/results"
	"repro/internal/route"
	"repro/internal/tcping"
	"repro/internal/whatif"
	"repro/internal/world"
)

// benchEnv is the shared world + campaign dataset, built once.
type benchEnv struct {
	w   *world.World
	mem *results.Memory
	cfg atlas.CampaignConfig
}

var (
	envOnce sync.Once
	env     *benchEnv
	envErr  error
)

func getEnv(b *testing.B) *benchEnv {
	b.Helper()
	envOnce.Do(func() {
		var w *world.World
		w, envErr = world.Build(world.Config{Seed: 1, Probes: 400})
		if envErr != nil {
			return
		}
		cfg := atlas.TestCampaign()
		var mem results.Memory
		if _, envErr = w.Platform.RunCampaign(context.Background(), cfg, mem.Add); envErr != nil {
			return
		}
		env = &benchEnv{w: w, mem: &mem, cfg: cfg}
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// BenchmarkFigure1Trends crawls the scholar server and assembles the
// zeitgeist series (Figure 1).
func BenchmarkFigure1Trends(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Figure1(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Quadrants classifies the application catalog (Figure 2).
func BenchmarkFigure2Quadrants(b *testing.B) {
	catalog := apps.Paper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Figure2(catalog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3aRegions summarizes the cloud deployment (Figure 3a).
func BenchmarkFigure3aRegions(b *testing.B) {
	e := getEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Figure3a(e.w.Catalog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3bProbes summarizes the probe census (Figure 3b).
func BenchmarkFigure3bProbes(b *testing.B) {
	e := getEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Figure3b(e.w.Probes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Proximity extracts per-country minimum latencies from
// the campaign dataset (Figure 4).
func BenchmarkFigure4Proximity(b *testing.B) {
	e := getEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Figure4(e.mem, e.w.Index); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5MinCDF builds the per-probe minimum-RTT CDFs (Figure 5).
func BenchmarkFigure5MinCDF(b *testing.B) {
	e := getEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Figure5(e.mem, e.w.Index); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6FullCDF builds the closest-datacenter full-distribution
// CDFs (Figure 6).
func BenchmarkFigure6FullCDF(b *testing.B) {
	e := getEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Figure6(e.mem, e.w.Index); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7LastMile runs the wired-vs-wireless comparison (Figure 7).
func BenchmarkFigure7LastMile(b *testing.B) {
	e := getEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Figure7(e.mem, e.w.Index, e.cfg.Start); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8Feasibility derives the feasibility zone and evaluates
// the catalog (Figure 8).
func BenchmarkFigure8Feasibility(b *testing.B) {
	e := getEnv(b)
	rep7, _, err := figures.Figure7(e.mem, e.w.Index, e.cfg.Start)
	if err != nil {
		b.Fatal(err)
	}
	catalog := apps.Paper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Figure8(rep7, catalog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignGeneration measures dataset synthesis throughput
// (samples per op reported via b.ReportMetric).
func BenchmarkCampaignGeneration(b *testing.B) {
	e := getEnv(b)
	cfg := e.cfg
	cfg.End = cfg.Start.Add(24 * time.Hour) // one day per iteration
	ctx := context.Background()
	b.ReportAllocs()
	var total uint64
	for i := 0; i < b.N; i++ {
		n, err := e.w.Platform.RunCampaign(ctx, cfg, func(results.Sample) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		total += n
	}
	b.ReportMetric(float64(total)/float64(b.N), "samples/op")
}

// BenchmarkCampaignParallel sweeps the execution engine's worker count
// over the TestCampaign workload. The merged dataset is byte-identical
// across the sweep (asserted by TestEngineByteIdenticalToSerial); this
// benchmark quantifies the throughput side of that guarantee.
func BenchmarkCampaignParallel(b *testing.B) {
	e := getEnv(b)
	cfg := e.cfg // 30 days, ~190k samples on the 400-probe bench world
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var total uint64
			for i := 0; i < b.N; i++ {
				n, err := e.w.Platform.RunCampaignOpts(ctx, cfg,
					atlas.CampaignOptions{Workers: workers},
					func(results.Sample) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				total += n
			}
			b.ReportMetric(float64(total)/float64(b.N), "samples/op")
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkPathRTT measures raw latency-model sampling speed.
func BenchmarkPathRTT(b *testing.B) {
	e := getEnv(b)
	pr := e.w.Probes.Public()[0]
	r := e.w.Platform.Targets(pr)[0]
	path, err := e.w.Platform.Path(pr, r)
	if err != nil {
		b.Fatal(err)
	}
	at := e.cfg.Start
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		path.RTT(at.Add(time.Duration(i) * time.Second))
	}
}

// BenchmarkLivePing measures a full echo round trip through the virtual
// network (pinger -> netsim -> responder -> netsim -> pinger).
func BenchmarkLivePing(b *testing.B) {
	e := getEnv(b)
	ledger := atlas.NewLedger()
	if err := ledger.Grant("bench", int64(b.N)+1_000_000); err != nil {
		b.Fatal(err)
	}
	svc, err := atlas.NewLiveService(e.w.Platform, ledger, 0.0001)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	pr := e.w.Probes.Public()[0]
	target := e.w.Platform.Targets(pr)[0].Addr()
	ctx := context.Background()
	spec := atlas.MeasurementSpec{Target: target, ProbeIDs: []int{pr.ID}, Count: 1, Timeout: 10 * time.Second}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := svc.Create("bench", spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Wait(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBackbone quantifies the private-vs-public backbone
// design choice in the latency model: the same long-haul path sampled with
// and without a private backbone (DESIGN.md §5 calls this out).
func BenchmarkAblationBackbone(b *testing.B) {
	model, err := netem.NewModel(netem.DefaultConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	e := getEnv(b)
	pr := e.w.Probes.Public()[0]
	site := pr.Site()
	for _, private := range []bool{true, false} {
		name := "public"
		if private {
			name = "private"
		}
		b.Run(name, func(b *testing.B) {
			path, err := model.Path(site, netem.Target{
				ID: "bench-" + name, Location: e.w.Catalog.All()[0].Location,
				Continent: e.w.Catalog.Continent(e.w.Catalog.All()[0]), Private: private,
			})
			if err != nil {
				b.Fatal(err)
			}
			sum := 0.0
			for i := 0; i < b.N; i++ {
				ms, lost := path.RTT(e.cfg.Start.Add(time.Duration(i) * time.Minute))
				if !lost {
					sum += ms
				}
			}
			if b.N > 0 {
				b.ReportMetric(sum/float64(b.N), "rtt-ms")
			}
		})
	}
}

// BenchmarkAnalysisThresholds measures threshold classification over the
// whole dataset (the §5 discussion numbers).
func BenchmarkAnalysisThresholds(b *testing.B) {
	e := getEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		err := e.mem.ForEach(func(s results.Sample) error {
			if !s.Lost && s.RTTms <= core.PLms {
				n++
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhereIsTheDelay runs the §4.3 delay attribution over the world.
func BenchmarkWhereIsTheDelay(b *testing.B) {
	e := getEnv(b)
	cfg := delay.DefaultConfig()
	cfg.Rounds = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := delay.WhereIsTheDelay(e.w.Platform, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProviderComparison aggregates the dataset per provider (§4.1
// backbone claim).
func BenchmarkProviderComparison(b *testing.B) {
	e := getEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProviderComparison(e.mem, e.w.Index); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBandwidthJustify evaluates the catalog's backhaul demand (§5's
// 1 GB/entity threshold).
func BenchmarkBandwidthJustify(b *testing.B) {
	catalog := apps.Paper()
	ref := bandwidth.Metro()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bandwidth.Justify(catalog, ref, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhatIf runs the baseline-vs-5G counterfactual pair on a short
// campaign (§5 discussion).
func BenchmarkWhatIf(b *testing.B) {
	cfg := whatif.DefaultConfig()
	cfg.Probes = 250
	campaign := atlas.TestCampaign()
	campaign.End = campaign.Start.Add(7 * 24 * time.Hour)
	cfg.Campaign = campaign
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := whatif.Run(ctx, cfg, whatif.Baseline(), whatif.FiveG()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPProbe measures the full three-way-handshake + request cycle
// through the virtual network (§5 TCP probing extension).
func BenchmarkTCPProbe(b *testing.B) {
	e := getEnv(b)
	n, err := netsim.NewNetwork(e.w.Platform, netsim.WithTimeScale(0.0001))
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	pr := e.w.Probes.Public()[0]
	target := e.w.Platform.Targets(pr)[0]
	srvEp, err := n.Attach(target.Addr())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tcping.NewServer(srvEp); err != nil {
		b.Fatal(err)
	}
	cliEp, err := n.Attach(pr.Addr())
	if err != nil {
		b.Fatal(err)
	}
	prober, err := tcping.NewProber(cliEp)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prober.Probe(ctx, target.Addr(), 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteExpand synthesizes a hop-level traceroute from a path.
func BenchmarkRouteExpand(b *testing.B) {
	e := getEnv(b)
	pr := e.w.Probes.Public()[0]
	r := e.w.Platform.Targets(pr)[0]
	path, err := e.w.Platform.Path(pr, r)
	if err != nil {
		b.Fatal(err)
	}
	site := pr.Site()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := route.Expand(path, site, r.Addr(), e.cfg.Start.Add(time.Duration(i)*time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpansionGreedy runs the §6 placement optimizer (3 picks from
// the full candidate set).
func BenchmarkExpansionGreedy(b *testing.B) {
	e := getEnv(b)
	cands := expansion.CountryCandidates(e.w.Platform, e.w.Countries)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expansion.Greedy(e.w.Platform, cands, 3, e.cfg.Start); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKSLastMile runs the wired-vs-wireless significance test over
// the campaign dataset.
func BenchmarkKSLastMile(b *testing.B) {
	e := getEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.LastMileSignificance(e.mem, e.w.Index); err != nil {
			b.Fatal(err)
		}
	}
}
